// Property tests for the worksharing engine: every (schedule, chunk,
// threads, trip-count) combination must cover each iteration exactly once —
// the core invariant of the OpenMP `for` construct.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <tuple>
#include <vector>

#include "runtime/hl.h"
#include "runtime/worksharing.h"

namespace zomp::rt {
namespace {

// ---------------------------------------------------------------------------
// Pure static_distribute math (no threads involved).
// ---------------------------------------------------------------------------

struct StaticCase {
  i64 lo, hi, step, chunk;
  i32 nthreads;
};

class StaticDistributeTest : public ::testing::TestWithParam<StaticCase> {};

TEST_P(StaticDistributeTest, PartitionsIterationSpaceExactly) {
  const StaticCase& c = GetParam();
  const i64 trips = trip_count(c.lo, c.hi, c.step);
  std::vector<int> hits(static_cast<std::size_t>(trips), 0);
  int last_owners = 0;
  for (i32 tid = 0; tid < c.nthreads; ++tid) {
    const StaticRange r =
        static_distribute(c.lo, c.hi, c.step, c.chunk, tid, c.nthreads);
    if (r.last) ++last_owners;
    const i64 span = r.hi - r.lo;
    for (i64 block = r.lo; block < c.hi; block += r.stride) {
      const i64 end = std::min(block + span, c.hi);
      for (i64 i = block; i < end; i += c.step) {
        const i64 index = (i - c.lo) / c.step;
        ASSERT_GE(index, 0);
        ASSERT_LT(index, trips);
        ++hits[static_cast<std::size_t>(index)];
      }
    }
  }
  for (i64 i = 0; i < trips; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "iteration " << i;
  }
  if (trips > 0) {
    EXPECT_EQ(last_owners, 1) << "exactly one thread owns the last iteration";
  }
}

std::vector<StaticCase> static_cases() {
  std::vector<StaticCase> cases;
  for (const i32 threads : {1, 2, 3, 4, 7, 16}) {
    for (const i64 chunk : {0, 1, 3, 8}) {
      for (const auto& [lo, hi, step] :
           std::vector<std::tuple<i64, i64, i64>>{{0, 0, 1},
                                                  {0, 1, 1},
                                                  {0, 17, 1},
                                                  {5, 100, 1},
                                                  {-10, 10, 1},
                                                  {0, 100, 3},
                                                  {1, 1000, 7},
                                                  {0, 16, 1}}) {
        cases.push_back(StaticCase{lo, hi, step, chunk, threads});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StaticDistributeTest,
                         ::testing::ValuesIn(static_cases()));

TEST(StaticDistributeTest, ZeroTripLoopGivesEmptyRanges) {
  for (i32 tid = 0; tid < 4; ++tid) {
    const StaticRange r = static_distribute(10, 10, 1, 0, tid, 4);
    EXPECT_GE(r.lo, r.hi);
    EXPECT_FALSE(r.last);
  }
}

TEST(StaticDistributeTest, BlockedIsContiguousAndOrdered) {
  // schedule(static) must give thread t a contiguous range before t+1's.
  i64 prev_end = 0;
  for (i32 tid = 0; tid < 5; ++tid) {
    const StaticRange r = static_distribute(0, 103, 1, 0, tid, 5);
    EXPECT_EQ(r.lo, prev_end);
    prev_end = r.hi;
  }
  EXPECT_EQ(prev_end, 103);
}

TEST(StaticDistributeTest, ChunkedRoundRobinAssignment) {
  // chunk=2, 3 threads: thread 0 gets [0,2), [6,8), ...
  const StaticRange r = static_distribute(0, 12, 1, 2, 0, 3);
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 2);
  EXPECT_EQ(r.stride, 6);
}

// ---------------------------------------------------------------------------
// Team dispatch (real threads through the high-level API).
// ---------------------------------------------------------------------------

struct DispatchCase {
  ScheduleKind kind;
  i64 chunk;
  int threads;
  i64 n;
};

class DispatchCoverageTest : public ::testing::TestWithParam<DispatchCase> {};

TEST_P(DispatchCoverageTest, EveryIterationExactlyOnce) {
  const DispatchCase& c = GetParam();
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(c.n));
  for (auto& h : hits) h.store(0);
  zomp::parallel(
      [&] {
        zomp::for_each(
            0, c.n,
            [&](i64 i) {
              hits[static_cast<std::size_t>(i)].fetch_add(
                  1, std::memory_order_relaxed);
            },
            zomp::ForOptions{{c.kind, c.chunk}, false});
      },
      zomp::ParallelOptions{c.threads, true});
  for (i64 i = 0; i < c.n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  }
}

std::vector<DispatchCase> dispatch_cases() {
  std::vector<DispatchCase> cases;
  for (const auto kind : {ScheduleKind::kStatic, ScheduleKind::kDynamic,
                          ScheduleKind::kGuided, ScheduleKind::kAuto}) {
    for (const i64 chunk : {0, 1, 7}) {
      if (kind == ScheduleKind::kDynamic && chunk == 0) continue;
      for (const int threads : {1, 2, 4}) {
        for (const i64 n : {0, 1, 63, 1024}) {
          cases.push_back(DispatchCase{kind, chunk, threads, n});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DispatchCoverageTest,
                         ::testing::ValuesIn(dispatch_cases()));

TEST(DispatchTest, ConsecutiveNowaitLoopsDoNotInterfere) {
  // Fast threads may run several constructs ahead under nowait; the slot
  // ring has to keep the constructs separate.
  constexpr i64 n = 64;
  constexpr int loops = 32;  // several times the ring size
  std::vector<std::atomic<int>> hits(n * loops);
  for (auto& h : hits) h.store(0);
  zomp::parallel(
      [&] {
        for (int l = 0; l < loops; ++l) {
          zomp::for_each(
              0, n,
              [&](i64 i) {
                hits[static_cast<std::size_t>(l * n + i)].fetch_add(
                    1, std::memory_order_relaxed);
              },
              zomp::ForOptions{{ScheduleKind::kDynamic, 3}, /*nowait=*/true});
        }
      },
      zomp::ParallelOptions{4, true});
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(DispatchTest, RuntimeScheduleFollowsIcv) {
  zomp::set_schedule({ScheduleKind::kDynamic, 5});
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  zomp::parallel(
      [&] {
        zomp::for_each(
            0, 100,
            [&](i64 i) {
              hits[static_cast<std::size_t>(i)].fetch_add(1);
            },
            zomp::ForOptions{{ScheduleKind::kRuntime, 0}, false});
      },
      zomp::ParallelOptions{2, true});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  zomp::set_schedule({ScheduleKind::kStatic, 0});
}

TEST(DispatchTest, GuidedChunksShrink) {
  // First chunk claimed must be the largest (guided-self-scheduling shape).
  std::vector<i64> sizes;
  zomp::parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        team.dispatch_init(ts, {ScheduleKind::kGuided, 1}, 0, 10000, 1);
        i64 lo = 0, hi = 0;
        bool last = false;
        while (team.dispatch_next(ts, &lo, &hi, &last)) {
          zomp::critical([&] { sizes.push_back(hi - lo); });
        }
        (void)team.barrier_wait(ts.tid);
      },
      zomp::ParallelOptions{1, true});
  ASSERT_GT(sizes.size(), 2u);
  EXPECT_GE(sizes.front(), sizes.back());
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), i64{0}), 10000);
}

}  // namespace
}  // namespace zomp::rt
