// S12 observability tests: the OMPT-style tool callback interface, the
// per-thread trace rings + Chrome-JSON serialization, the metrics registry,
// and the team_stats surfaces (C++, C ABI, MiniZig host fn).
//
// Global-state hygiene: every fixture resets the tracer/metrics state it
// touches, and callback tests unregister every event in TearDown, so suites
// compose in one binary regardless of order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "interp/interp.h"
#include "npb/cg.h"
#include "runtime/abi.h"
#include "runtime/api.h"
#include "runtime/hl.h"
#include "runtime/metrics.h"
#include "runtime/team.h"
#include "runtime/trace.h"

namespace zomp {
namespace {

using rt::TraceEv;

// ---------------------------------------------------------------------------
// Chrome-JSON micro-parser. The serializer's record shape is fixed
// ({"name":"..","ph":"X",...,"pid":N,"tid":N,...}), so a field scan is
// enough to validate the schema without a JSON library.
// ---------------------------------------------------------------------------

struct JsonEv {
  std::string name;
  char ph = '?';
  double ts = -1.0;
  int pid = -1;
  int tid = -1;
};

std::vector<JsonEv> parse_trace_events(const std::string& json) {
  std::vector<JsonEv> out;
  size_t pos = 0;
  const std::string name_key = "{\"name\":\"";
  while ((pos = json.find(name_key, pos)) != std::string::npos) {
    JsonEv ev;
    size_t p = pos + name_key.size();
    const size_t name_end = json.find('"', p);
    ev.name = json.substr(p, name_end - p);
    const size_t ph_pos = json.find("\"ph\":\"", name_end);
    ev.ph = json[ph_pos + 6];
    const size_t obj_end = json.find("}}", name_end);
    const std::string obj = json.substr(pos, obj_end + 2 - pos);
    if (const size_t ts_pos = obj.find("\"ts\":"); ts_pos != std::string::npos) {
      ev.ts = std::stod(obj.substr(ts_pos + 5));
    }
    if (const size_t pid_pos = obj.find("\"pid\":");
        pid_pos != std::string::npos) {
      ev.pid = std::stoi(obj.substr(pid_pos + 6));
    }
    // First "tid" key only: the args object repeats the team-local tid.
    if (const size_t tid_pos = obj.find("\"tid\":");
        tid_pos != std::string::npos) {
      ev.tid = std::stoi(obj.substr(tid_pos + 6));
    }
    out.push_back(std::move(ev));
    pos = obj_end;
  }
  return out;
}

/// Checks balanced, never-negative B/E nesting per (tid, name). Events
/// within one tid come from one ring in emit order, so a running depth is
/// meaningful.
void expect_paired(const std::vector<JsonEv>& events,
                   const std::string& name) {
  std::map<int, int> depth;
  for (const JsonEv& ev : events) {
    if (ev.name != name) continue;
    if (ev.ph == 'B') {
      ++depth[ev.tid];
    } else if (ev.ph == 'E') {
      --depth[ev.tid];
      EXPECT_GE(depth[ev.tid], 0)
          << "unmatched '" << name << "' E on tid " << ev.tid;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced '" << name << "' on tid " << tid;
  }
}

// ---------------------------------------------------------------------------
// Ring recording + Chrome JSON
// ---------------------------------------------------------------------------

class TraceRingTest : public ::testing::Test {
 protected:
  void SetUp() override { rt::trace_reset_for_test(); }
  void TearDown() override { rt::trace_reset_for_test(); }
};

TEST_F(TraceRingTest, DisabledModeEmitsNothing) {
  const std::string before = rt::trace_serialize_json();
  rt::trace_emit(TraceEv::kTaskCreate, 1, 2);
  parallel([] {}, ParallelOptions{2, true});
  EXPECT_EQ(rt::trace_serialize_json(), before);
}

TEST_F(TraceRingTest, SerializedJsonHasSchemaAndPairing) {
  rt::trace_enable_ring_for_test();
  parallel(
      [] {
        for_each(0, 64, [](rt::i64) {},
                 ForOptions{{rt::ScheduleKind::kDynamic, 4}, false});
        single([] {
          for (int i = 0; i < 8; ++i) task([] {});
        });
        barrier();
      },
      ParallelOptions{4, true});
  const std::string json = rt::trace_serialize_json();
  ASSERT_EQ(json.substr(0, 16), "{\"traceEvents\":[");
  ASSERT_EQ(json.substr(json.size() - 2), "]}");

  const std::vector<JsonEv> events = parse_trace_events(json);
  ASSERT_FALSE(events.empty());
  std::set<int> implicit_tids;
  int parallel_b = 0, dispatch_claims = 0, task_b = 0, barrier_b = 0;
  for (const JsonEv& ev : events) {
    // Schema: every record carries name/ph/pid/tid; non-metadata records
    // carry a non-negative timestamp.
    EXPECT_FALSE(ev.name.empty());
    EXPECT_TRUE(ev.ph == 'B' || ev.ph == 'E' || ev.ph == 'i' || ev.ph == 'M')
        << ev.ph;
    EXPECT_GE(ev.pid, 0);
    if (ev.ph != 'M') {
      // process_name metadata has no tid lane; every real record does.
      EXPECT_GE(ev.tid, 0);
      EXPECT_GE(ev.ts, 0.0) << ev.name;
    }
    if (ev.name == "implicit task" && ev.ph == 'B') implicit_tids.insert(ev.tid);
    if (ev.name == "parallel" && ev.ph == 'B') ++parallel_b;
    if (ev.name == "chunk claim") ++dispatch_claims;
    if (ev.name == "task" && ev.ph == 'B') ++task_b;
    if (ev.name == "barrier" && ev.ph == 'B') ++barrier_b;
  }
  EXPECT_EQ(parallel_b, 1);
  EXPECT_EQ(implicit_tids.size(), 4u) << "every member an implicit task";
  // The sharded dynamic dispatcher serves slabs, not fixed chunks, so the
  // claim count is workload-dependent; at least one claim must appear.
  EXPECT_GE(dispatch_claims, 1);
  EXPECT_EQ(task_b, 8);
  EXPECT_GE(barrier_b, 4);
  for (const char* name : {"parallel", "implicit task", "barrier", "task"}) {
    expect_paired(events, name);
  }
}

TEST_F(TraceRingTest, NpbCgClassSTraceIsWellFormedOnEveryMember) {
  // The acceptance scenario: a class-S NPB kernel at 4 threads under
  // tracing must serialize to parseable Chrome JSON with paired B/E for
  // parallel / implicit task / barrier on every member.
  rt::trace_enable_ring_for_test();
  const npb::CgClass cls = npb::cg_class('S');
  const npb::SparseMatrix a = npb::cg_make_matrix(cls.na, cls.nonzer);
  const npb::CgResult r = npb::cg_parallel(a, cls.niter, cls.shift, 4);
  EXPECT_TRUE(npb::cg_verify(r, cls)) << r.zeta;

  // Pairing is only meaningful when nothing overflowed: a dropped E would
  // read as an unbalanced lane, not a tracer bug.
  ASSERT_EQ(rt::trace_dropped_total(), 0u);

  const std::vector<JsonEv> events =
      parse_trace_events(rt::trace_serialize_json());
  std::set<int> members;
  for (const JsonEv& ev : events) {
    if (ev.name == "implicit task" && ev.ph == 'B') members.insert(ev.tid);
  }
  EXPECT_GE(members.size(), 4u);
  for (const char* name : {"parallel", "implicit task", "barrier", "task"}) {
    expect_paired(events, name);
  }
}

TEST_F(TraceRingTest, FullRingCountsDropsInsteadOfWrapping) {
  rt::trace_enable_ring_for_test();
  rt::trace_set_ring_capacity_for_test(8);
  const rt::u64 before = rt::trace_dropped_total();
  // Capacity overrides bind at ring registration, so a fresh thread (fresh
  // ring) is needed; the pool's long-lived rings keep the default size.
  std::thread t([] {
    for (int i = 0; i < 50; ++i) {
      rt::trace_emit(TraceEv::kTaskCreate, i, 0);
    }
  });
  t.join();
  EXPECT_EQ(rt::trace_dropped_total() - before, 42u);
}

TEST_F(TraceRingTest, ConcurrentTeamsAndMidRegionDrainAreRaceFree) {
  // Two user threads fork independent teams while this thread drains the
  // rings mid-flight: the owner-write/acquire-drain discipline must keep
  // this TSan-clean, with the drain merely missing in-flight records.
  rt::trace_enable_ring_for_test();
  std::atomic<int> regions_left{2};
  auto driver = [&regions_left] {
    for (int i = 0; i < 20; ++i) {
      parallel(
          [] {
            for_each(0, 32, [](rt::i64) {},
                     ForOptions{{rt::ScheduleKind::kDynamic, 1}, false});
            single([] {
              for (int k = 0; k < 4; ++k) task([] {});
            });
          },
          ParallelOptions{2, true});
    }
    regions_left.fetch_sub(1, std::memory_order_relaxed);
  };
  std::thread t1(driver);
  std::thread t2(driver);
  while (regions_left.load(std::memory_order_relaxed) > 0) {
    (void)rt::trace_serialize_json();
    (void)rt::trace_dropped_total();
    std::this_thread::yield();
  }
  t1.join();
  t2.join();
  const std::vector<JsonEv> events =
      parse_trace_events(rt::trace_serialize_json());
  // Quiescent now: the full trace is published and balanced.
  for (const char* name : {"parallel", "implicit task", "barrier", "task"}) {
    expect_paired(events, name);
  }
}

TEST_F(TraceRingTest, WriteJsonRoundTripsThroughAFile) {
  rt::trace_enable_ring_for_test();
  parallel([] { barrier(); }, ParallelOptions{2, true});
  const std::string path = ::testing::TempDir() + "zomp_trace_roundtrip.json";
  ASSERT_TRUE(rt::trace_write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  // Each serialization re-calibrates the TSC tick rate, so timestamps
  // wobble at sub-microsecond scale between drains; the event structure is
  // what round-trips.
  const std::vector<JsonEv> a = parse_trace_events(text);
  const std::vector<JsonEv> b = parse_trace_events(rt::trace_serialize_json());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].ph, b[i].ph);
    EXPECT_EQ(a[i].pid, b[i].pid);
    EXPECT_EQ(a[i].tid, b[i].tid);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tool callback interface (zomp_start_tool / zomp_set_callback)
// ---------------------------------------------------------------------------

/// Event collector shared by the registered callbacks. A leaf mutex: the
/// callbacks run synchronously on emitting threads, and nothing is locked
/// while it is held.
struct Collector {
  std::mutex mu;
  std::vector<std::pair<std::int32_t, std::int32_t>> events;  // (event, gtid)

  void record(std::int32_t event, std::int32_t gtid) {
    std::lock_guard<std::mutex> lock(mu);
    events.emplace_back(event, gtid);
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return events;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
  }
  int count(std::int32_t event) {
    std::lock_guard<std::mutex> lock(mu);
    int n = 0;
    for (const auto& [ev, gtid] : events) n += ev == event ? 1 : 0;
    return n;
  }
};

Collector& collector() {
  static Collector c;
  return c;
}

void collecting_callback(std::int32_t event, std::int32_t gtid,
                         std::int32_t /*tid*/, std::int64_t /*arg0*/,
                         std::int64_t /*arg1*/, void* /*tool_data*/) {
  collector().record(event, gtid);
}

class ToolCallbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    collector().clear();
    for (std::int32_t ev = 0; ev < ZOMP_EV_COUNT; ++ev) {
      ASSERT_EQ(zomp_set_callback(ev, &collecting_callback), 1);
    }
  }
  void TearDown() override {
    for (std::int32_t ev = 0; ev < ZOMP_EV_COUNT; ++ev) {
      zomp_set_callback(ev, nullptr);
    }
    collector().clear();
  }
};

TEST_F(ToolCallbackTest, RegistrationRoundTripsAndRejectsBadEvents) {
  EXPECT_EQ(zomp_get_callback(ZOMP_EV_PARALLEL_BEGIN), &collecting_callback);
  EXPECT_EQ(zomp_set_callback(-1, &collecting_callback), 0);
  EXPECT_EQ(zomp_set_callback(ZOMP_EV_COUNT, &collecting_callback), 0);
  EXPECT_EQ(zomp_get_callback(-1), nullptr);
  EXPECT_EQ(zomp_get_callback(ZOMP_EV_COUNT), nullptr);
}

TEST_F(ToolCallbackTest, StartToolRunsInitializerAndDeliversToolData) {
  static std::atomic<void*> seen_data{nullptr};
  static int dummy = 0;
  auto init = [](void* data) -> std::int32_t {
    seen_data.store(data, std::memory_order_relaxed);
    return 1;
  };
  EXPECT_EQ(zomp_start_tool(init, &dummy), 1);
  EXPECT_EQ(seen_data.load(std::memory_order_relaxed), &dummy);

  // The registered tool_data rides into every callback.
  static std::atomic<void*> cb_data{nullptr};
  zomp_set_callback(ZOMP_EV_PARALLEL_BEGIN,
                    [](std::int32_t, std::int32_t, std::int32_t, std::int64_t,
                       std::int64_t, void* tool_data) {
                      cb_data.store(tool_data, std::memory_order_relaxed);
                    });
  parallel([] {}, ParallelOptions{2, true});
  EXPECT_EQ(cb_data.load(std::memory_order_relaxed), &dummy);
  // A refused initializer reports failure but leaves callbacks alone.
  EXPECT_EQ(zomp_start_tool([](void*) -> std::int32_t { return 0; }, nullptr),
            0);
}

TEST_F(ToolCallbackTest, CppRegionDeliversTheFullEventSequence) {
  parallel(
      [] {
        for_each(0, 64, [](rt::i64) {},
                 ForOptions{{rt::ScheduleKind::kDynamic, 4}, false});
        single([] {
          for (int i = 0; i < 6; ++i) task([] {});
        });
        barrier();
      },
      ParallelOptions{4, true});

  const auto events = collector().snapshot();
  ASSERT_FALSE(events.empty());
  // The fork brackets everything: first event is parallel-begin, last is
  // parallel-end (both emitted by the master).
  EXPECT_EQ(events.front().first, ZOMP_EV_PARALLEL_BEGIN);
  EXPECT_EQ(events.back().first, ZOMP_EV_PARALLEL_END);
  EXPECT_EQ(collector().count(ZOMP_EV_PARALLEL_BEGIN), 1);
  EXPECT_EQ(collector().count(ZOMP_EV_PARALLEL_END), 1);
  EXPECT_EQ(collector().count(ZOMP_EV_IMPLICIT_TASK_BEGIN), 4);
  EXPECT_EQ(collector().count(ZOMP_EV_IMPLICIT_TASK_END), 4);
  EXPECT_EQ(collector().count(ZOMP_EV_DISPATCH_INIT), 4);
  EXPECT_GE(collector().count(ZOMP_EV_DISPATCH_CLAIM), 1);
  EXPECT_EQ(collector().count(ZOMP_EV_TASK_CREATE), 6);
  EXPECT_EQ(collector().count(ZOMP_EV_TASK_SCHEDULE), 6);
  EXPECT_EQ(collector().count(ZOMP_EV_TASK_COMPLETE), 6);
  EXPECT_GE(collector().count(ZOMP_EV_BARRIER_ENTER), 4);
  EXPECT_EQ(collector().count(ZOMP_EV_BARRIER_ENTER),
            collector().count(ZOMP_EV_BARRIER_WAIT_END));
}

TEST_F(ToolCallbackTest, InterpBackendDeliversTheSameEventClasses) {
  // The other backend: the same runtime hooks fire when a MiniZig program
  // executes on the interpreter's real threads.
  const std::string source = R"(
pub fn main() void {
  var sum: i64 = 0;
  //#omp parallel num_threads(4)
  {
    //#omp for reduction(+: sum) schedule(dynamic, 4)
    for (0..64) |i| {
      sum = sum + i;
    }
  }
  @print(sum);
}
)";
  core::CompileOptions options;
  options.openmp = true;
  auto result = core::compile_source(source, options);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  std::ostringstream out;
  interp::InterpOptions iopts;
  iopts.out = &out;
  interp::Interp interp(*result.module, iopts);
  ASSERT_TRUE(interp.run_main());
  EXPECT_EQ(out.str(), "2016\n");

  EXPECT_EQ(collector().count(ZOMP_EV_PARALLEL_BEGIN), 1);
  EXPECT_EQ(collector().count(ZOMP_EV_PARALLEL_END), 1);
  EXPECT_EQ(collector().count(ZOMP_EV_IMPLICIT_TASK_BEGIN), 4);
  EXPECT_EQ(collector().count(ZOMP_EV_IMPLICIT_TASK_END), 4);
  EXPECT_GE(collector().count(ZOMP_EV_DISPATCH_CLAIM), 1);
  EXPECT_GE(collector().count(ZOMP_EV_BARRIER_ENTER), 4);
  EXPECT_EQ(collector().count(ZOMP_EV_BARRIER_ENTER),
            collector().count(ZOMP_EV_BARRIER_WAIT_END));
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rt::metrics_reset_for_test();
    rt::metrics_set_enabled_for_test(true);
  }
  void TearDown() override {
    rt::metrics_set_enabled_for_test(false);
    rt::metrics_reset_for_test();
  }
};

TEST_F(MetricsTest, RegionWorkloadsFeedTheCounters) {
  parallel(
      [] {
        for_each(0, 256, [](rt::i64) {},
                 ForOptions{{rt::ScheduleKind::kDynamic, 4}, false});
        single([] {
          for (int i = 0; i < 16; ++i) task([] {});
        });
        barrier();
      },
      ParallelOptions{4, true});

  EXPECT_GE(rt::metrics_value(rt::Metric::kParallelRegions), 1u);
  EXPECT_GE(rt::metrics_value(rt::Metric::kBarrierEpisodes), 4u);
  EXPECT_GE(rt::metrics_value(rt::Metric::kDispatchClaims), 1u);
  EXPECT_GE(rt::metrics_value(rt::Metric::kTasksExecuted), 16u);
  EXPECT_GE(rt::metrics_value(rt::Metric::kHotTeamHits) +
                rt::metrics_value(rt::Metric::kHotTeamRebuilds),
            1u);

  // Every dispatch claim lands in exactly one shard lane.
  rt::u64 shard_sum = 0;
  for (rt::i32 s = 0; s < rt::kMetricsMaxShards; ++s) {
    shard_sum += rt::metrics_shard_claims(s);
  }
  EXPECT_EQ(shard_sum, rt::metrics_value(rt::Metric::kDispatchClaims));
}

TEST_F(MetricsTest, BarrierWaitTimeAccumulates) {
  parallel(
      [] {
        // Skew arrival so someone measurably waits.
        if (rt::current_thread().tid == 0) {
          const double t0 = wtime();
          while (wtime() - t0 < 0.005) {
          }
        }
        barrier();
      },
      ParallelOptions{4, true});
  EXPECT_GT(rt::metrics_value(rt::Metric::kBarrierWaitNs), 0u);
}

TEST_F(MetricsTest, ReportIsFencedAndListsEveryCounter) {
  parallel([] { barrier(); }, ParallelOptions{2, true});
  const std::string report = rt::metrics_report();
  EXPECT_EQ(report.rfind("ZOMP METRICS REPORT BEGIN\n", 0), 0u) << report;
  EXPECT_NE(report.find("ZOMP METRICS REPORT END\n"), std::string::npos);
  for (const char* name :
       {"parallel_regions", "hot_team_hits", "hot_team_rebuilds",
        "barrier_episodes", "barrier_wait_ns", "dispatch_claims",
        "tasks_executed", "tasks_stolen", "tasks_mailbox_pulled",
        "steal_attempts", "steal_lost", "cancellations_observed",
        "faults_injected"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

TEST_F(MetricsTest, DisabledModeCountsNothing) {
  rt::metrics_set_enabled_for_test(false);
  parallel(
      [] {
        for_each(0, 64, [](rt::i64) {},
                 ForOptions{{rt::ScheduleKind::kDynamic, 4}, false});
      },
      ParallelOptions{2, true});
  for (rt::i32 m = 0; m < static_cast<rt::i32>(rt::Metric::kCount); ++m) {
    EXPECT_EQ(rt::metrics_value(static_cast<rt::Metric>(m)), 0u);
  }
}

// ---------------------------------------------------------------------------
// team_stats surfaces
// ---------------------------------------------------------------------------

TEST(TeamStatsTest, RegionWorkIsVisibleFromInsideTheRegion) {
  TeamStats st{};
  zomp_team_stats_t abi_st{};
  std::atomic<bool> read_done{false};
  parallel(
      [&] {
        for_each(0, 128, [](rt::i64) {},
                 ForOptions{{rt::ScheduleKind::kDynamic, 2}, false});
        single([] {
          for (int i = 0; i < 8; ++i) task([] {});
        });
        barrier();
        // Quiescent-read window: the barrier ordered all member counter
        // writes before this point, and non-masters hold off on the join
        // barrier (whose episode counts would race) until the master has
        // read.
        if (rt::current_thread().tid == 0) {
          st = team_stats();
          zomp_team_stats(&abi_st);
          read_done.store(true, std::memory_order_release);
        } else {
          while (!read_done.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
      },
      ParallelOptions{4, true});

  EXPECT_GE(st.dispatch_claims, 1);
  EXPECT_GE(st.tasks_executed, 8);
  EXPECT_GE(st.barrier_episodes, 4);
  // The ABI twin reads the same aggregate.
  EXPECT_EQ(abi_st.steal_attempts, st.steal_attempts);
  EXPECT_EQ(abi_st.steal_lost, st.steal_lost);
  EXPECT_EQ(abi_st.mailbox_pulls, st.mailbox_pulls);
  EXPECT_EQ(abi_st.tasks_executed, st.tasks_executed);
  EXPECT_EQ(abi_st.dispatch_claims, st.dispatch_claims);
  EXPECT_EQ(abi_st.barrier_episodes, st.barrier_episodes);
}

TEST(TeamStatsTest, AbiGuardsNullAndMzTwinBoundsWhich) {
  zomp_team_stats(nullptr);  // must not crash
  EXPECT_EQ(mz_omp_team_stat(-1), 0);
  EXPECT_EQ(mz_omp_team_stat(6), 0);
  for (std::int64_t which = 0; which < 6; ++which) {
    EXPECT_GE(mz_omp_team_stat(which), 0) << which;
  }
}

TEST(TeamStatsTest, MzHostFnsAreCallableFromMiniZig) {
  const std::string source = R"(
extern fn mz_omp_get_wtick() f64;
extern fn mz_omp_team_stat(which: i64) i64;
extern fn mz_omp_trace_flush() i64;
pub fn main() void {
  var total: i64 = 0;
  //#omp parallel for reduction(+: total) num_threads(4)
  for (0..100) |i| {
    total = total + 1;
  }
  @print(total);
  @print(mz_omp_get_wtick() > 0.0);
  @print(mz_omp_team_stat(5) >= 0);
  @print(mz_omp_trace_flush());
}
)";
  core::CompileOptions options;
  options.openmp = true;
  auto result = core::compile_source(source, options);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  std::ostringstream out;
  interp::InterpOptions iopts;
  iopts.out = &out;
  interp::Interp interp(*result.module, iopts);
  ASSERT_TRUE(interp.run_main());
  // trace_flush returns 0: tracing is not file-backed in this test.
  EXPECT_EQ(out.str(), "100\ntrue\ntrue\n0\n");
}

}  // namespace
}  // namespace zomp
