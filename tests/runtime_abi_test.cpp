// C ABI tests — the surface generated code targets (runtime/abi.h).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/abi.h"
#include "runtime/icv.h"

namespace {

constexpr zomp_ident_t kLoc{"abi_test.mz", "test", 1};

struct ForkState {
  std::atomic<int> members{0};
  std::atomic<int> tid_sum{0};
};

void count_microtask(std::int32_t /*gtid*/, std::int32_t tid, void** args) {
  auto* state = static_cast<ForkState*>(args[0]);
  state->members.fetch_add(1);
  state->tid_sum.fetch_add(tid);
}

TEST(AbiForkTest, ForkRunsAllMembers) {
  ForkState state;
  void* args[1] = {&state};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(&kLoc, &count_microtask, 1, args);
  EXPECT_EQ(state.members.load(), 4);
  EXPECT_EQ(state.tid_sum.load(), 0 + 1 + 2 + 3);
}

TEST(AbiForkTest, PushNumThreadsIsOneShot) {
  ForkState state;
  void* args[1] = {&state};
  zomp_push_num_threads(&kLoc, 3);
  zomp_fork_call(&kLoc, &count_microtask, 1, args);
  EXPECT_EQ(state.members.load(), 3);
  // Second fork without a push uses the default, not 3 again necessarily —
  // we only assert it forked at all.
  ForkState state2;
  void* args2[1] = {&state2};
  zomp_fork_call(&kLoc, &count_microtask, 1, args2);
  EXPECT_GE(state2.members.load(), 1);
}

TEST(AbiForkTest, ForkIfZeroSerialises) {
  ForkState state;
  void* args[1] = {&state};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call_if(&kLoc, &count_microtask, 1, args, 0);
  EXPECT_EQ(state.members.load(), 1);
}

struct WsState {
  std::vector<std::atomic<int>>* hits;
  std::int64_t lo, hi, chunk;
  std::int32_t sched;
};

void static_loop_microtask(std::int32_t gtid, std::int32_t /*tid*/, void** args) {
  auto* ws = static_cast<WsState*>(args[0]);
  std::int64_t mylo = 0, myhi = 0, stride = 0;
  std::int32_t last = 0;
  zomp_for_static_init(&kLoc, gtid, ws->chunk, ws->lo, ws->hi, 1, &mylo, &myhi,
                       &stride, &last);
  const std::int64_t span = myhi - mylo;
  for (std::int64_t b = mylo; b < ws->hi; b += stride) {
    const std::int64_t end = b + span < ws->hi ? b + span : ws->hi;
    for (std::int64_t i = b; i < end; ++i) {
      (*ws->hits)[static_cast<std::size_t>(i - ws->lo)].fetch_add(1);
    }
  }
  zomp_for_static_fini(&kLoc, gtid);
  zomp_barrier(&kLoc, gtid);
}

void dispatch_loop_microtask(std::int32_t gtid, std::int32_t /*tid*/, void** args) {
  auto* ws = static_cast<WsState*>(args[0]);
  zomp_dispatch_init(&kLoc, gtid, ws->sched, ws->chunk, ws->lo, ws->hi, 1);
  std::int64_t clo = 0, chi = 0;
  std::int32_t clast = 0;
  while (zomp_dispatch_next(&kLoc, gtid, &clo, &chi, &clast) != 0) {
    for (std::int64_t i = clo; i < chi; ++i) {
      (*ws->hits)[static_cast<std::size_t>(i - ws->lo)].fetch_add(1);
    }
  }
  zomp_barrier(&kLoc, gtid);
}

class AbiWorksharingTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int64_t>> {};

TEST_P(AbiWorksharingTest, DispatchCoversOnce) {
  const auto [sched, chunk] = GetParam();
  constexpr std::int64_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  WsState ws{&hits, 3, 3 + n, chunk, sched};
  void* args[1] = {&ws};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(&kLoc, &dispatch_loop_microtask, 1, args);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, AbiWorksharingTest,
    ::testing::Values(std::make_tuple(0, std::int64_t{0}),   // static blocked
                      std::make_tuple(0, std::int64_t{4}),   // static chunked
                      std::make_tuple(1, std::int64_t{1}),   // dynamic
                      std::make_tuple(1, std::int64_t{16}),  // dynamic chunked
                      std::make_tuple(2, std::int64_t{1}),   // guided
                      std::make_tuple(3, std::int64_t{0}))); // auto

TEST(AbiWorksharingTest, StaticInitCoversOnce) {
  constexpr std::int64_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  WsState ws{&hits, 0, n, 0, 0};
  void* args[1] = {&ws};
  zomp_push_num_threads(&kLoc, 3);
  zomp_fork_call(&kLoc, &static_loop_microtask, 1, args);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

struct SingleState {
  std::atomic<int> winners{0};
};

void single_microtask(std::int32_t gtid, std::int32_t /*tid*/, void** args) {
  auto* s = static_cast<SingleState*>(args[0]);
  for (int i = 0; i < 10; ++i) {
    if (zomp_single(&kLoc, gtid) != 0) {
      s->winners.fetch_add(1);
      zomp_end_single(&kLoc, gtid);
    }
    zomp_barrier(&kLoc, gtid);
  }
}

TEST(AbiSyncTest, SingleElectsOnePerInstance) {
  SingleState s;
  void* args[1] = {&s};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(&kLoc, &single_microtask, 1, args);
  EXPECT_EQ(s.winners.load(), 10);
}

struct CriticalState {
  long counter = 0;
};

void critical_microtask(std::int32_t gtid, std::int32_t /*tid*/, void** args) {
  auto* s = static_cast<CriticalState*>(args[0]);
  for (int i = 0; i < 1000; ++i) {
    zomp_critical(&kLoc, gtid, "abi_test");
    ++s->counter;
    zomp_end_critical(&kLoc, gtid, "abi_test");
  }
}

TEST(AbiSyncTest, CriticalExcludes) {
  CriticalState s;
  void* args[1] = {&s};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(&kLoc, &critical_microtask, 1, args);
  EXPECT_EQ(s.counter, 4000);
}

void master_microtask(std::int32_t gtid, std::int32_t tid, void** args) {
  auto* count = static_cast<std::atomic<int>*>(args[0]);
  if (zomp_master(&kLoc, gtid) != 0) {
    EXPECT_EQ(tid, 0);
    count->fetch_add(1);
  }
}

TEST(AbiSyncTest, MasterIsTidZero) {
  std::atomic<int> count{0};
  void* args[1] = {&count};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(&kLoc, &master_microtask, 1, args);
  EXPECT_EQ(count.load(), 1);
}

TEST(AbiAtomicTest, IntegerOps) {
  std::int64_t v = 10;
  zomp_atomic_add_i64(&v, 5);
  EXPECT_EQ(v, 15);
  zomp_atomic_sub_i64(&v, 3);
  EXPECT_EQ(v, 12);
  zomp_atomic_mul_i64(&v, 4);
  EXPECT_EQ(v, 48);
  zomp_atomic_div_i64(&v, 6);
  EXPECT_EQ(v, 8);
  zomp_atomic_min_i64(&v, 3);
  EXPECT_EQ(v, 3);
  zomp_atomic_max_i64(&v, 7);
  EXPECT_EQ(v, 7);
  zomp_atomic_and_i64(&v, 6);
  EXPECT_EQ(v, 6);
  zomp_atomic_or_i64(&v, 9);
  EXPECT_EQ(v, 15);
  zomp_atomic_xor_i64(&v, 5);
  EXPECT_EQ(v, 10);
}

TEST(AbiAtomicTest, FloatOps) {
  double v = 8.0;
  zomp_atomic_add_f64(&v, 2.0);
  EXPECT_DOUBLE_EQ(v, 10.0);
  zomp_atomic_sub_f64(&v, 4.0);
  EXPECT_DOUBLE_EQ(v, 6.0);
  zomp_atomic_mul_f64(&v, 3.0);
  EXPECT_DOUBLE_EQ(v, 18.0);
  zomp_atomic_div_f64(&v, 2.0);
  EXPECT_DOUBLE_EQ(v, 9.0);
  zomp_atomic_min_f64(&v, 1.5);
  EXPECT_DOUBLE_EQ(v, 1.5);
  zomp_atomic_max_f64(&v, 2.5);
  EXPECT_DOUBLE_EQ(v, 2.5);
}

void atomic_contention_microtask(std::int32_t /*gtid*/, std::int32_t /*tid*/,
                                 void** args) {
  auto* v = static_cast<double*>(args[0]);
  for (int i = 0; i < 10000; ++i) zomp_atomic_add_f64(v, 1.0);
}

TEST(AbiAtomicTest, FloatAddUnderContention) {
  double v = 0.0;
  void* args[1] = {&v};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(&kLoc, &atomic_contention_microtask, 1, args);
  EXPECT_DOUBLE_EQ(v, 40000.0);
}

TEST(AbiQueryTest, SerialContextQueries) {
  EXPECT_EQ(zomp_get_thread_num(), 0);
  EXPECT_EQ(zomp_get_num_threads(), 1);
  EXPECT_EQ(zomp_in_parallel(), 0);
  EXPECT_GE(zomp_get_num_procs(), 1);
  EXPECT_GE(zomp_get_max_threads(), 1);
  EXPECT_GE(zomp_get_wtime(), 0.0);
  EXPECT_GT(zomp_get_wtick(), 0.0);
}

TEST(AbiQueryTest, MiniZigI64VariantsAgree) {
  EXPECT_EQ(mz_omp_get_thread_num(), zomp_get_thread_num());
  EXPECT_EQ(mz_omp_get_num_threads(), zomp_get_num_threads());
  EXPECT_EQ(mz_omp_get_num_procs(), zomp_get_num_procs());
  EXPECT_EQ(mz_omp_in_parallel(), zomp_in_parallel());
  EXPECT_EQ(mz_omp_get_team_size(0), zomp_get_team_size(0));
  EXPECT_EQ(mz_omp_get_max_active_levels(), zomp_get_max_active_levels());
  EXPECT_EQ(mz_omp_get_max_task_priority(), zomp_get_max_task_priority());
  mz_omp_set_num_threads(2);
  EXPECT_EQ(mz_omp_get_max_threads(), 2);
}

TEST(AbiQueryTest, MaxActiveLevelsRoundTrip) {
  const std::int32_t saved = zomp_get_max_active_levels();
  zomp_set_max_active_levels(4);
  EXPECT_EQ(zomp_get_max_active_levels(), 4);
  EXPECT_EQ(mz_omp_get_max_active_levels(), 4);
  // Values below 1 are rejected (max-active-levels-var is at least 1).
  zomp_set_max_active_levels(0);
  EXPECT_EQ(zomp_get_max_active_levels(), 4);
  zomp_set_max_active_levels(saved);
}

TEST(AbiQueryTest, MaxTaskPriorityReflectsIcv) {
  // Default: OMP_MAX_TASK_PRIORITY unset -> 0, per spec.
  EXPECT_EQ(zomp_get_max_task_priority(), 0);
  zomp::rt::GlobalIcv::instance().set_max_task_priority(7);
  EXPECT_EQ(zomp_get_max_task_priority(), 7);
  EXPECT_EQ(mz_omp_get_max_task_priority(), 7);
  zomp::rt::GlobalIcv::instance().set_max_task_priority(0);
  EXPECT_EQ(zomp_get_max_task_priority(), 0);
}

struct TeamSizeState {
  std::atomic<std::int32_t> outer_l1{-99};
  std::atomic<std::int32_t> inner_l1{-99};
  std::atomic<std::int32_t> inner_l2{-99};
  std::atomic<std::int32_t> inner_l0{-99};
};

void team_size_inner(std::int32_t /*gtid*/, std::int32_t tid, void** args) {
  auto* st = static_cast<TeamSizeState*>(args[0]);
  if (tid == 0) {
    st->inner_l0.store(zomp_get_team_size(0));
    st->inner_l1.store(zomp_get_team_size(1));
    st->inner_l2.store(zomp_get_team_size(2));
  }
}

void team_size_outer(std::int32_t /*gtid*/, std::int32_t tid, void** args) {
  auto* st = static_cast<TeamSizeState*>(args[0]);
  if (tid == 0) {
    st->outer_l1.store(zomp_get_team_size(1));
    zomp_push_num_threads(&kLoc, 2);
    zomp_fork_call(&kLoc, &team_size_inner, 1, args);
  }
}

TEST(AbiQueryTest, TeamSizeWalksAncestorChain) {
  // Serial context: level 0 is the initial implicit team of size 1; anything
  // else is out of range.
  EXPECT_EQ(zomp_get_team_size(0), 1);
  EXPECT_EQ(zomp_get_team_size(1), -1);
  EXPECT_EQ(zomp_get_team_size(-1), -1);

  const std::int32_t saved = zomp_get_max_active_levels();
  zomp_set_max_active_levels(2);
  TeamSizeState st;
  void* args[1] = {&st};
  zomp_push_num_threads(&kLoc, 3);
  zomp_fork_call(&kLoc, &team_size_outer, 1, args);
  zomp_set_max_active_levels(saved);

  EXPECT_EQ(st.outer_l1.load(), 3);   // innermost team, seen from level 1
  EXPECT_EQ(st.inner_l0.load(), 1);   // initial implicit team
  EXPECT_EQ(st.inner_l1.load(), 3);   // ancestor: the outer 3-wide team
  EXPECT_EQ(st.inner_l2.load(), 2);   // innermost: the nested 2-wide team
}

TEST(AbiReduceTest, TreeReduceCombinesAndElectsOneWinner) {
  // zomp_reduce must combine every member's partial, hand the result to
  // exactly one winner, and leave the losers' buffers untouched.
  struct State {
    double total = 0.0;
    std::atomic<int> winners{0};
  } state;
  void* args[1] = {&state};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(
      &kLoc,
      [](std::int32_t gtid, std::int32_t tid, void** a) {
        auto* s = static_cast<State*>(a[0]);
        double local = static_cast<double>(tid + 1);  // 1+2+3+4 = 10
        const auto add = [](void* lhs, const void* rhs) {
          *static_cast<double*>(lhs) += *static_cast<const double*>(rhs);
        };
        if (zomp_reduce(&kLoc, gtid, &local, sizeof(local), add)) {
          s->winners.fetch_add(1, std::memory_order_relaxed);
          s->total = local;
        }
        zomp_barrier(&kLoc, gtid);
      },
      1, args);
  EXPECT_EQ(state.winners.load(), 1);
  EXPECT_DOUBLE_EQ(state.total, 10.0);
}

TEST(AbiReduceTest, BackToBackReductionsDoNotCrossTalk) {
  // Consecutive reductions with no barrier between them exercise the slot
  // reuse gate (done_seq) of the reduction tree.
  struct State {
    std::int64_t sums[8] = {};
  } state;
  void* args[1] = {&state};
  zomp_push_num_threads(&kLoc, 4);
  zomp_fork_call(
      &kLoc,
      [](std::int32_t gtid, std::int32_t tid, void** a) {
        auto* s = static_cast<State*>(a[0]);
        const auto add = [](void* lhs, const void* rhs) {
          *static_cast<std::int64_t*>(lhs) +=
              *static_cast<const std::int64_t*>(rhs);
        };
        for (int round = 0; round < 8; ++round) {
          std::int64_t local = (tid + 1) * (round + 1);
          if (zomp_reduce(&kLoc, gtid, &local, sizeof(local), add)) {
            s->sums[round] = local;
          }
        }
        zomp_barrier(&kLoc, gtid);
      },
      1, args);
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(state.sums[round], 10 * (round + 1)) << "round " << round;
  }
}

}  // namespace
