// Interpreter tests — language semantics and, critically, OpenMP directive
// semantics executed on real runtime threads. This suite is the semantics
// reference for the whole pipeline: what these programs print/return is what
// the transpiled C++ must also produce (gen_kernels_test cross-checks that
// on the NPB kernels).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "interp/interp.h"

namespace zomp::interp {
namespace {

struct ProgramRun {
  bool compiled = false;
  std::string output;
  std::string diagnostics;
};

ProgramRun run_program(const std::string& source, bool openmp = true) {
  ProgramRun r;
  core::CompileOptions options;
  options.openmp = openmp;
  auto result = core::compile_source(source, options);
  r.diagnostics = result.diagnostics_text();
  if (!result.ok) return r;
  r.compiled = true;
  std::ostringstream out;
  InterpOptions iopts;
  iopts.out = &out;
  Interp interp(*result.module, iopts);
  EXPECT_TRUE(interp.run_main()) << "no main in:\n" << source;
  r.output = out.str();
  return r;
}

void expect_output(const std::string& source, const std::string& want) {
  const ProgramRun r = run_program(source);
  ASSERT_TRUE(r.compiled) << r.diagnostics;
  EXPECT_EQ(r.output, want) << source;
}

// ---------------------------------------------------------------------------
// Serial language semantics
// ---------------------------------------------------------------------------

TEST(InterpLangTest, ArithmeticAndPrint) {
  expect_output("pub fn main() void { @print(2 + 3 * 4, 10 / 3, 10 % 3); }",
                "14 3 1\n");
  expect_output("pub fn main() void { @print(1.5 * 4.0, -2.5); }", "6 -2.5\n");
  expect_output("pub fn main() void { @print(true and false, true or false, !true); }",
                "false true false\n");
}

TEST(InterpLangTest, IntegerOps) {
  expect_output("pub fn main() void { @print(12 & 10, 12 | 3, 12 ^ 10, 1 << 4, 32 >> 2); }",
                "8 15 6 16 8\n");
}

TEST(InterpLangTest, Comparisons) {
  expect_output("pub fn main() void { @print(1 < 2, 2 <= 2, 3 > 4, 3 >= 4, 1 == 1, 1 != 1); }",
                "true true false false true false\n");
}

TEST(InterpLangTest, ControlFlow) {
  expect_output(R"(
pub fn main() void {
  var s: i64 = 0;
  for (0..10) |i| {
    if (i == 3) { continue; }
    if (i == 7) { break; }
    s += i;
  }
  @print(s);
}
)",
                "18\n");  // 0+1+2+4+5+6
}

TEST(InterpLangTest, WhileContinueExpressionRunsOnContinue) {
  expect_output(R"(
pub fn main() void {
  var i: i64 = 0;
  var s: i64 = 0;
  while (i < 10) : (i += 1) {
    if (@mod(i, 2) == 0) { continue; }
    s += i;
  }
  @print(s);
}
)",
                "25\n");  // 1+3+5+7+9
}

TEST(InterpLangTest, FunctionsAndRecursion) {
  expect_output(R"(
fn fib(n: i64) i64 {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
pub fn main() void { @print(fib(15)); }
)",
                "610\n");
}

TEST(InterpLangTest, SlicesShareStorageAcrossCalls) {
  expect_output(R"(
fn fill(x: []f64, v: f64) void {
  for (0..x.len) |i| {
    x[i] = v;
  }
}
pub fn main() void {
  var a = @alloc(f64, 4);
  fill(a, 2.5);
  @print(a[0] + a[3], a.len);
  @free(a);
}
)",
                "5 4\n");
}

TEST(InterpLangTest, PointersReadAndWrite) {
  expect_output(R"(
fn bump(p: *i64, by: i64) void {
  p.* = p.* + by;
}
pub fn main() void {
  var x: i64 = 40;
  bump(&x, 2);
  @print(x);
  var a = @alloc(i64, 2);
  a[1] = 7;
  var q = &a[1];
  q.* = q.* * 3;
  @print(a[1]);
}
)",
                "42\n21\n");
}

TEST(InterpLangTest, Builtins) {
  expect_output("pub fn main() void { @print(@sqrt(16.0), @abs(-3), @abs(-2.5)); }",
                "4 3 2.5\n");
  expect_output("pub fn main() void { @print(@min(3, 7), @max(3.5, 1.5), @mod(-7, 3)); }",
                "3 3.5 2\n");
  expect_output("pub fn main() void { @print(@intFromFloat(3.9), @floatFromInt(5)); }",
                "3 5\n");
  expect_output("pub fn main() void { @print(@pow(2.0, 10.0), @exp(0.0), @log(1.0)); }",
                "1024 1 0\n");
}

TEST(InterpLangTest, GlobalsPersistAcrossCalls) {
  expect_output(R"(
var counter: i64 = 10;
fn bump() void { counter += 1; }
pub fn main() void {
  bump();
  bump();
  @print(counter);
}
)",
                "12\n");
}

TEST(InterpLangTest, ShadowingScopes) {
  expect_output(R"(
pub fn main() void {
  var a: i64 = 1;
  {
    var a: i64 = 100;
    a += 1;
    @print(a);
  }
  @print(a);
}
)",
                "101\n1\n");
}

// ---------------------------------------------------------------------------
// OpenMP directive semantics
// ---------------------------------------------------------------------------

TEST(InterpOmpTest, ParallelRunsOncePerMember) {
  expect_output(R"(
pub fn main() void {
  var count: i64 = 0;
  //#omp parallel num_threads(4)
  {
    //#omp atomic
    count += 1;
  }
  @print(count);
}
)",
                "4\n");
}

TEST(InterpOmpTest, SharedScalarWritesVisibleAfterJoin) {
  expect_output(R"(
pub fn main() void {
  var flag: i64 = 0;
  //#omp parallel num_threads(3)
  {
    //#omp master
    {
      flag = 77;
    }
  }
  @print(flag);
}
)",
                "77\n");
}

TEST(InterpOmpTest, PrivateCopiesDoNotLeak) {
  expect_output(R"(
pub fn main() void {
  var a: i64 = 5;
  //#omp parallel private(a) num_threads(4)
  {
    a = 1000;
  }
  @print(a);
}
)",
                "5\n");
}

TEST(InterpOmpTest, FirstprivateSeesInitialValue) {
  expect_output(R"(
pub fn main() void {
  var base: i64 = 30;
  var sum: i64 = 0;
  //#omp parallel firstprivate(base) num_threads(4) reduction(+: sum)
  {
    base += 12;
    sum += base;
  }
  @print(sum);
}
)",
                "168\n");  // 4 threads x (30+12)
}

TEST(InterpOmpTest, ParallelForCoversIterationSpace) {
  expect_output(R"(
pub fn main() void {
  const n: i64 = 1000;
  var a = @alloc(i64, n);
  //#omp parallel for num_threads(4)
  for (0..n) |i| {
    a[i] = a[i] + 1;
  }
  var total: i64 = 0;
  for (0..n) |i| {
    total += a[i];
  }
  @print(total);
  @free(a);
}
)",
                "1000\n");
}

struct ScheduleCase {
  const char* clause;
};

class InterpScheduleTest : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(InterpScheduleTest, ReductionMatchesClosedForm) {
  // sum of 0..n-1 = n(n-1)/2 must hold for every schedule.
  const std::string source = std::string(R"(
pub fn main() void {
  const n: i64 = 500;
  var sum: i64 = 0;
  //#omp parallel for reduction(+: sum) num_threads(4) )") +
                             GetParam().clause + R"(
  for (0..n) |i| {
    sum += i;
  }
  @print(sum);
}
)";
  const ProgramRun r = run_program(source);
  ASSERT_TRUE(r.compiled) << r.diagnostics;
  EXPECT_EQ(r.output, "124750\n") << GetParam().clause;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, InterpScheduleTest,
    ::testing::Values(ScheduleCase{""}, ScheduleCase{"schedule(static)"},
                      ScheduleCase{"schedule(static, 1)"},
                      ScheduleCase{"schedule(static, 7)"},
                      ScheduleCase{"schedule(dynamic, 1)"},
                      ScheduleCase{"schedule(dynamic, 16)"},
                      ScheduleCase{"schedule(guided, 2)"},
                      ScheduleCase{"schedule(auto)"},
                      ScheduleCase{"schedule(runtime)"}));

struct ReduceOpCase {
  const char* op;
  const char* init;
  const char* update;
  const char* want;
};

class InterpReduceOpTest : public ::testing::TestWithParam<ReduceOpCase> {};

TEST_P(InterpReduceOpTest, CombinesCorrectly) {
  const ReduceOpCase& c = GetParam();
  const std::string source = std::string("pub fn main() void {\n  var acc: i64 = ") +
                             c.init + ";\n  //#omp parallel for reduction(" +
                             c.op + ": acc) num_threads(3)\n  for (1..8) |i| {\n    " +
                             c.update + "\n  }\n  @print(acc);\n}\n";
  const ProgramRun r = run_program(source);
  ASSERT_TRUE(r.compiled) << r.diagnostics;
  EXPECT_EQ(r.output, std::string(c.want) + "\n") << source;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, InterpReduceOpTest,
    ::testing::Values(
        ReduceOpCase{"+", "100", "acc += i;", "128"},      // 100 + 28
        ReduceOpCase{"*", "1", "acc *= i;", "5040"},       // 7!
        ReduceOpCase{"min", "99", "acc = @min(acc, i);", "1"},
        ReduceOpCase{"max", "-5", "acc = @max(acc, i);", "7"},
        ReduceOpCase{"&", "-1", "acc = acc & (i | 8);", "8"},
        ReduceOpCase{"|", "0", "acc = acc | i;", "7"},
        ReduceOpCase{"^", "0", "acc = acc ^ i;", "0"}));  // xor of 1..7

TEST(InterpOmpTest, StandaloneForSplitsAmongTeam) {
  expect_output(R"(
pub fn main() void {
  const n: i64 = 100;
  var sum: i64 = 0;
  //#omp parallel num_threads(4)
  {
    //#omp for reduction(+: sum)
    for (0..n) |i| {
      sum += 1;
    }
  }
  @print(sum);
}
)",
                "100\n");
}

TEST(InterpOmpTest, SingleRunsOncePerInstance) {
  expect_output(R"(
pub fn main() void {
  var count: i64 = 0;
  //#omp parallel num_threads(4)
  {
    //#omp single
    {
      count += 1;
    }
    //#omp single
    {
      count += 10;
    }
  }
  @print(count);
}
)",
                "11\n");
}

TEST(InterpOmpTest, CriticalProtectsSharedUpdates) {
  expect_output(R"(
pub fn main() void {
  var count: i64 = 0;
  //#omp parallel num_threads(4)
  {
    for (0..500) |i| {
      //#omp critical
      {
        count += 1;
      }
    }
  }
  @print(count);
}
)",
                "2000\n");
}

TEST(InterpOmpTest, AtomicOnSliceElement) {
  expect_output(R"(
pub fn main() void {
  var cells = @alloc(i64, 2);
  //#omp parallel num_threads(4)
  {
    for (0..100) |i| {
      //#omp atomic
      cells[0] += 1;
      //#omp atomic
      cells[1] += 2;
    }
  }
  @print(cells[0], cells[1]);
  @free(cells);
}
)",
                "400 800\n");
}

TEST(InterpOmpTest, OrderedIterationsInSequence) {
  expect_output(R"(
pub fn main() void {
  const n: i64 = 30;
  var log = @alloc(i64, n);
  var pos: i64 = 0;
  //#omp parallel num_threads(4)
  {
    //#omp for ordered schedule(dynamic, 1)
    for (0..n) |i| {
      //#omp ordered
      {
        log[pos] = i;
        pos += 1;
      }
    }
  }
  var sorted: i64 = 1;
  for (1..n) |i| {
    if (log[i] <= log[i - 1]) { sorted = 0; }
  }
  @print(sorted, pos);
  @free(log);
}
)",
                "1 30\n");
}

TEST(InterpOmpTest, LastprivateTakesLastIteration) {
  expect_output(R"(
pub fn main() void {
  const n: i64 = 100;
  var last: i64 = -1;
  //#omp parallel for lastprivate(last) num_threads(4) schedule(static, 3)
  for (0..n) |i| {
    last = i * 2;
  }
  @print(last);
}
)",
                "198\n");
}

TEST(InterpOmpTest, NumThreadsExpressionEvaluated) {
  expect_output(R"(
extern fn mz_omp_get_num_threads() i64;
pub fn main() void {
  const half: i64 = 2;
  var nt: i64 = 0;
  //#omp parallel num_threads(half * 2)
  {
    //#omp master
    {
      nt = mz_omp_get_num_threads();
    }
  }
  @print(nt);
}
)",
                "4\n");
}

TEST(InterpOmpTest, IfClauseSerialises) {
  expect_output(R"(
extern fn mz_omp_get_num_threads() i64;
pub fn main() void {
  var nt: i64 = 0;
  const go: bool = false;
  //#omp parallel num_threads(4) if(go)
  {
    nt = mz_omp_get_num_threads();
  }
  @print(nt);
}
)",
                "1\n");
}

TEST(InterpOmpTest, TasksRunToCompletion) {
  expect_output(R"(
pub fn main() void {
  var done: i64 = 0;
  //#omp parallel num_threads(4)
  {
    //#omp single
    {
      for (0..50) |i| {
        //#omp task
        {
          //#omp atomic
          done += 1;
        }
      }
      //#omp taskwait
      @print(done);
    }
  }
}
)",
                "50\n");
}

TEST(InterpOmpTest, TaskCapturesByValue) {
  expect_output(R"(
pub fn main() void {
  var sum: i64 = 0;
  //#omp parallel num_threads(2)
  {
    //#omp single
    {
      for (0..10) |i| {
        const v = i * i;
        //#omp task
        {
          //#omp atomic
          sum += v;
        }
      }
    }
  }
  @print(sum);
}
)",
                "285\n");
}

TEST(InterpOmpTest, NestedParallelSerialisedByDefault) {
  expect_output(R"(
extern fn mz_omp_get_num_threads() i64;
pub fn main() void {
  var inner: i64 = 0;
  //#omp parallel num_threads(2)
  {
    //#omp master
    {
      //#omp parallel num_threads(4)
      {
        //#omp master
        {
          inner = mz_omp_get_num_threads();
        }
      }
    }
  }
  @print(inner);
}
)",
                "1\n");
}

// -- Serial/parallel equivalence property -------------------------------------

TEST(InterpEquivalenceTest, OpenmpOnOffGiveSameIntegerResults) {
  // Integer programs must produce identical output with the directive engine
  // enabled and disabled — the transform must preserve semantics.
  const std::string source = R"(
pub fn main() void {
  const n: i64 = 300;
  var a = @alloc(i64, n);
  var sum: i64 = 0;
  var last: i64 = 0;
  //#omp parallel for reduction(+: sum) lastprivate(last) schedule(guided, 3) num_threads(4)
  for (0..n) |i| {
    a[i] = i * 3;
    sum += a[i];
    last = a[i];
  }
  @print(sum, last);
  @free(a);
}
)";
  const ProgramRun with_omp = run_program(source, /*openmp=*/true);
  const ProgramRun without = run_program(source, /*openmp=*/false);
  ASSERT_TRUE(with_omp.compiled);
  ASSERT_TRUE(without.compiled);
  EXPECT_EQ(with_omp.output, without.output);
  EXPECT_EQ(with_omp.output, "134550 897\n");
}

TEST(InterpHostFnTest, CustomHostFunctionsCallable) {
  auto result = core::compile_source(R"(
extern fn host_add(a: i64, b: i64) i64;
pub fn main() void { @print(host_add(20, 22)); }
)");
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  std::ostringstream out;
  InterpOptions opts;
  opts.out = &out;
  Interp interp(*result.module, opts);
  interp.register_host_fn("host_add", [](std::vector<Value>& args) {
    return Value(args[0].as_i64() + args[1].as_i64());
  });
  ASSERT_TRUE(interp.run_main());
  EXPECT_EQ(out.str(), "42\n");
}

TEST(InterpApiTest, CallByNameReturnsValue) {
  auto result = core::compile_source(R"(
pub fn square(x: f64) f64 { return x * x; }
)");
  ASSERT_TRUE(result.ok);
  Interp interp(*result.module);
  const Value v = interp.call_by_name("square", {Value(3.0)});
  EXPECT_DOUBLE_EQ(v.as_f64(), 9.0);
}

}  // namespace
}  // namespace zomp::interp
