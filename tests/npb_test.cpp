// NPB kernel tests: the random generator, matrix properties, verification
// values, and serial/parallel agreement for every workload of Table 1.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "npb/cg.h"
#include "npb/ep.h"
#include "npb/is.h"
#include "npb/mandel.h"
#include "npb/nprandom.h"

namespace zomp::npb {
namespace {

// ---------------------------------------------------------------------------
// randlc / ipow46
// ---------------------------------------------------------------------------

TEST(RandomTest, ValuesAreInUnitInterval) {
  double seed = kDefaultSeed;
  for (int i = 0; i < 10000; ++i) {
    const double r = randlc(&seed, kRandA);
    ASSERT_GT(r, 0.0);
    ASSERT_LT(r, 1.0);
  }
}

TEST(RandomTest, SequenceIsDeterministic) {
  double s1 = kDefaultSeed, s2 = kDefaultSeed;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(randlc(&s1, kRandA), randlc(&s2, kRandA));
  }
}

TEST(RandomTest, MeanIsRoughlyHalf) {
  double seed = kDefaultSeed;
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += randlc(&seed, kRandA);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, VranlcMatchesRepeatedRandlc) {
  double s1 = kDefaultSeed, s2 = kDefaultSeed;
  double buf[64];
  vranlc(64, &s1, kRandA, buf);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(buf[i], randlc(&s2, kRandA));
  }
  ASSERT_EQ(s1, s2);
}

TEST(RandomTest, Ipow46JumpsMatchStepping) {
  // seed * a^k (via ipow46) must equal k sequential steps.
  for (const std::int64_t k : {1, 2, 3, 17, 100, 4096}) {
    double stepped = kDefaultSeed;
    for (std::int64_t i = 0; i < k; ++i) randlc(&stepped, kRandA);

    const double t = ipow46(kRandA, k);
    double jumped = kDefaultSeed;
    randlc(&jumped, t);
    ASSERT_EQ(jumped, stepped) << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// EP
// ---------------------------------------------------------------------------

TEST(EpTest, SmokeClassMatchesFrozenSums) {
  const EpClass cls = ep_class('m');
  const EpResult r = ep_serial(cls.m);
  EXPECT_TRUE(ep_verify(r, cls));
  EXPECT_NEAR(r.sx, -7.562892068717590e+2, 1e-9);
  EXPECT_NEAR(r.sy, -4.968668248989351e+2, 1e-9);
}

TEST(EpTest, ParallelMatchesSerialAcrossThreadCounts) {
  const EpResult serial = ep_serial(18);
  for (const int threads : {1, 2, 4}) {
    const EpResult par = ep_parallel(18, threads);
    EXPECT_NEAR(par.sx, serial.sx, 1e-7) << threads;
    EXPECT_NEAR(par.sy, serial.sy, 1e-7) << threads;
    EXPECT_EQ(par.pairs_in_disc, serial.pairs_in_disc) << threads;
    EXPECT_EQ(par.q, serial.q) << threads;
  }
}

TEST(EpTest, AnnulusCountsSumToAccepted) {
  const EpResult r = ep_serial(18);
  std::int64_t total = 0;
  for (const std::int64_t q : r.q) total += q;
  EXPECT_EQ(total, r.pairs_in_disc);
  // Gaussian deviates concentrate near zero: bin 0 dominates.
  EXPECT_GT(r.q[0], r.q[1]);
  EXPECT_GT(r.q[1], r.q[2]);
}

TEST(EpTest, AcceptanceRateNearPiOver4) {
  const EpResult r = ep_serial(18);
  const double rate =
      static_cast<double>(r.pairs_in_disc) / static_cast<double>(1 << 18);
  EXPECT_NEAR(rate, 3.14159265 / 4.0, 0.01);
}

TEST(EpTest, ClassTableIsConsistent) {
  EXPECT_EQ(ep_class('S').m, 24);
  EXPECT_EQ(ep_class('W').m, 25);
  EXPECT_EQ(ep_class('A').m, 28);
}

// ---------------------------------------------------------------------------
// CG
// ---------------------------------------------------------------------------

TEST(CgTest, MatrixIsSymmetric) {
  const SparseMatrix a = cg_make_matrix(200, 5);
  std::map<std::pair<std::int64_t, std::int64_t>, double> entries;
  for (std::int64_t i = 0; i < a.n; ++i) {
    for (std::int64_t k = a.rowstr[static_cast<std::size_t>(i)];
         k < a.rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
      entries[{i, a.colidx[static_cast<std::size_t>(k)]}] =
          a.values[static_cast<std::size_t>(k)];
    }
  }
  for (const auto& [ij, v] : entries) {
    const auto it = entries.find({ij.second, ij.first});
    ASSERT_NE(it, entries.end());
    ASSERT_EQ(it->second, v);
  }
}

TEST(CgTest, MatrixIsStrictlyDiagonallyDominant) {
  const SparseMatrix a = cg_make_matrix(300, 6);
  for (std::int64_t i = 0; i < a.n; ++i) {
    double diag = 0.0;
    double off = 0.0;
    for (std::int64_t k = a.rowstr[static_cast<std::size_t>(i)];
         k < a.rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.colidx[static_cast<std::size_t>(k)] == i) {
        diag = a.values[static_cast<std::size_t>(k)];
      } else {
        off += std::fabs(a.values[static_cast<std::size_t>(k)]);
      }
    }
    ASSERT_GT(diag, off) << "row " << i;
  }
}

TEST(CgTest, RowstrIsMonotoneAndCoversNnz) {
  const SparseMatrix a = cg_make_matrix(100, 4);
  ASSERT_EQ(a.rowstr.size(), 101u);
  EXPECT_EQ(a.rowstr.front(), 0);
  for (std::size_t i = 1; i < a.rowstr.size(); ++i) {
    ASSERT_GE(a.rowstr[i], a.rowstr[i - 1]);
  }
  EXPECT_EQ(a.rowstr.back(), a.nnz());
}

TEST(CgTest, SolverConverges) {
  const CgClass cls = cg_class('m');
  const SparseMatrix a = cg_make_matrix(cls.na, cls.nonzer);
  const CgResult r = cg_serial(a, cls.niter, cls.shift);
  EXPECT_LT(r.final_rnorm, 1e-9);
  EXPECT_EQ(r.iterations, cls.niter);
}

TEST(CgTest, ParallelMatchesSerialExactly) {
  const CgClass cls = cg_class('m');
  const SparseMatrix a = cg_make_matrix(cls.na, cls.nonzer);
  const CgResult serial = cg_serial(a, cls.niter, cls.shift);
  for (const int threads : {1, 2, 4}) {
    const CgResult par = cg_parallel(a, cls.niter, cls.shift, threads);
    // The parallel combine order for dot products can differ, but with the
    // critical-section combine the residual stays tiny; zeta agrees to
    // near-ulp for this matrix.
    EXPECT_NEAR(par.zeta, serial.zeta, 1e-10) << threads;
  }
}

TEST(CgTest, ClassSVerificationValue) {
  const CgClass cls = cg_class('S');
  const SparseMatrix a = cg_make_matrix(cls.na, cls.nonzer);
  const CgResult r = cg_serial(a, cls.niter, cls.shift);
  EXPECT_TRUE(cg_verify(r, cls)) << r.zeta;
}

// ---------------------------------------------------------------------------
// IS
// ---------------------------------------------------------------------------

TEST(IsTest, KeysAreInRange) {
  const IsClass cls = is_class('m');
  const auto keys = is_make_keys(cls.total_keys, cls.max_key);
  for (const std::int64_t k : keys) {
    ASSERT_GE(k, 0);
    ASSERT_LT(k, cls.max_key);
  }
}

TEST(IsTest, KeyDistributionIsCentered) {
  // Sum of four uniforms: mean 2 -> keys centre around max_key/2.
  const IsClass cls = is_class('m');
  const auto keys = is_make_keys(cls.total_keys, cls.max_key);
  double mean = 0.0;
  for (const std::int64_t k : keys) mean += static_cast<double>(k);
  mean /= static_cast<double>(keys.size());
  EXPECT_NEAR(mean, static_cast<double>(cls.max_key) / 2.0,
              static_cast<double>(cls.max_key) * 0.02);
}

TEST(IsTest, SerialSortsAndChecksums) {
  const IsClass cls = is_class('m');
  const auto keys = is_make_keys(cls.total_keys, cls.max_key);
  const IsResult r = is_serial(keys, cls.max_key, cls.iterations);
  EXPECT_TRUE(r.sorted);
  EXPECT_NE(r.rank_checksum, 0u);
}

TEST(IsTest, ParallelMatchesSerialExactly) {
  const IsClass cls = is_class('m');
  const auto keys = is_make_keys(cls.total_keys, cls.max_key);
  const IsResult serial = is_serial(keys, cls.max_key, cls.iterations);
  for (const int threads : {1, 2, 4}) {
    const IsResult par = is_parallel(keys, cls.max_key, cls.iterations, threads);
    EXPECT_EQ(par.rank_checksum, serial.rank_checksum) << threads;
    EXPECT_TRUE(par.sorted) << threads;
  }
}

TEST(IsTest, ClassSVerificationChecksum) {
  const IsClass cls = is_class('S');
  const auto keys = is_make_keys(cls.total_keys, cls.max_key);
  const IsResult r = is_serial(keys, cls.max_key, cls.iterations);
  EXPECT_TRUE(is_verify(r, cls)) << r.rank_checksum;
}

TEST(IsTest, ModularChecksumIsDeterministic) {
  const IsClass cls = is_class('m');
  const auto keys = is_make_keys(cls.total_keys, cls.max_key);
  const std::int64_t a = is_rank_checksum_mod(keys, cls.max_key, cls.iterations);
  const std::int64_t b = is_rank_checksum_mod(keys, cls.max_key, cls.iterations);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  EXPECT_LT(a, std::int64_t{1} << 30);
}

// ---------------------------------------------------------------------------
// Mandelbrot
// ---------------------------------------------------------------------------

TEST(MandelTest, KnownPixels) {
  // The origin is in the set; 2+2i escapes immediately.
  EXPECT_EQ(mandel_pixel(0.0, 0.0, 1000), 1000);
  EXPECT_LE(mandel_pixel(2.0, 2.0, 1000), 2);
  // -1 is in the set (period-2 orbit).
  EXPECT_EQ(mandel_pixel(-1.0, 0.0, 1000), 1000);
}

TEST(MandelTest, ParallelMatchesSerialExactlyForAllSchedules) {
  const MandelParams params{128, 128, 500};
  const MandelResult serial = mandel_serial(params);
  EXPECT_GT(serial.inside, 0);
  for (const int sched : {0, 1, 2}) {
    for (const int threads : {1, 2, 4}) {
      const MandelResult par = mandel_parallel(params, threads, sched, 2);
      ASSERT_EQ(par.inside, serial.inside) << sched << "/" << threads;
      ASSERT_EQ(par.iter_checksum, serial.iter_checksum)
          << sched << "/" << threads;
    }
  }
}

TEST(MandelTest, RenderBufferMatchesChecksum) {
  const MandelParams params{64, 64, 200};
  const MandelResult serial = mandel_serial(params);
  std::vector<std::int64_t> buf;
  mandel_render(params, buf, 2);
  ASSERT_EQ(buf.size(), 64u * 64u);
  std::uint64_t checksum = 0;
  std::int64_t inside = 0;
  for (const std::int64_t it : buf) {
    checksum += static_cast<std::uint64_t>(it);
    if (it == params.max_iter) ++inside;
  }
  EXPECT_EQ(checksum, serial.iter_checksum);
  EXPECT_EQ(inside, serial.inside);
}

TEST(MandelTest, AsymmetricWindowChangesWork) {
  MandelParams window{64, 64, 300};
  window.im_min = -2.5;
  window.im_max = 0.3;
  const MandelResult a = mandel_serial(window);
  const MandelResult b = mandel_serial(MandelParams{64, 64, 300});
  EXPECT_NE(a.iter_checksum, b.iter_checksum);
  const MandelResult par = mandel_parallel(window, 2, 1, 1);
  EXPECT_EQ(par.iter_checksum, a.iter_checksum);
}

}  // namespace
}  // namespace zomp::npb
