// Barrier algorithm tests: central and tree barriers must order rounds
// correctly for any member count, including oversubscribed teams.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/barrier.h"

namespace zomp::rt {
namespace {

struct BarrierCase {
  BarrierKind kind;
  i32 members;
  int rounds;
};

class BarrierTest : public ::testing::TestWithParam<BarrierCase> {};

TEST_P(BarrierTest, NoMemberEntersRoundKPlusOneBeforeAllFinishRoundK) {
  const BarrierCase& c = GetParam();
  auto barrier = Barrier::create(c.kind, c.members);
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->size(), c.members);

  // Each member increments the round counter before the barrier; after the
  // barrier every member must observe counter == members * (round+1).
  std::atomic<int> counter{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(c.members));
  for (i32 tid = 0; tid < c.members; ++tid) {
    threads.emplace_back([&, tid] {
      for (int round = 0; round < c.rounds; ++round) {
        counter.fetch_add(1, std::memory_order_acq_rel);
        barrier->wait(tid);
        const int seen = counter.load(std::memory_order_acquire);
        if (seen < c.members * (round + 1)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        barrier->wait(tid);  // second barrier separates the read from round+1
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(counter.load(), c.members * c.rounds);
}

std::vector<BarrierCase> barrier_cases() {
  std::vector<BarrierCase> cases;
  for (const auto kind : {BarrierKind::kCentral, BarrierKind::kTree}) {
    // Member counts beyond hardware concurrency (2 on CI) exercise the
    // spin-then-yield path.
    for (const i32 members : {1, 2, 3, 4, 5, 8, 13}) {
      cases.push_back(BarrierCase{kind, members, 50});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BarrierTest,
                         ::testing::ValuesIn(barrier_cases()));

TEST(BarrierTest, SingleMemberNeverBlocks) {
  for (const auto kind : {BarrierKind::kCentral, BarrierKind::kTree}) {
    auto barrier = Barrier::create(kind, 1);
    for (int i = 0; i < 1000; ++i) barrier->wait(0);
    SUCCEED();
  }
}

TEST(BarrierTest, TreeFaninMatchesArity) {
  // Structural smoke: a 17-member tree barrier must still round-trip.
  auto barrier = Barrier::create(BarrierKind::kTree, 17);
  std::vector<std::thread> threads;
  for (i32 tid = 0; tid < 17; ++tid) {
    threads.emplace_back([&, tid] {
      for (int r = 0; r < 20; ++r) barrier->wait(tid);
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace zomp::rt
