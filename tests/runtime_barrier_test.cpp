// Barrier algorithm tests: central and tree barriers must order rounds
// correctly for any member count, including oversubscribed teams.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/barrier.h"

namespace zomp::rt {
namespace {

struct BarrierCase {
  BarrierKind kind;
  i32 members;
  int rounds;
};

class BarrierTest : public ::testing::TestWithParam<BarrierCase> {};

TEST_P(BarrierTest, NoMemberEntersRoundKPlusOneBeforeAllFinishRoundK) {
  const BarrierCase& c = GetParam();
  auto barrier = Barrier::create(c.kind, c.members);
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->size(), c.members);

  // Each member increments the round counter before the barrier; after the
  // barrier every member must observe counter == members * (round+1).
  std::atomic<int> counter{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(c.members));
  for (i32 tid = 0; tid < c.members; ++tid) {
    threads.emplace_back([&, tid] {
      for (int round = 0; round < c.rounds; ++round) {
        counter.fetch_add(1, std::memory_order_acq_rel);
        barrier->wait(tid);
        const int seen = counter.load(std::memory_order_acquire);
        if (seen < c.members * (round + 1)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        barrier->wait(tid);  // second barrier separates the read from round+1
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(counter.load(), c.members * c.rounds);
}

std::vector<BarrierCase> barrier_cases() {
  std::vector<BarrierCase> cases;
  for (const auto kind : {BarrierKind::kCentral, BarrierKind::kTree}) {
    // Member counts beyond hardware concurrency (2 on CI) exercise the
    // spin-then-yield path.
    for (const i32 members : {1, 2, 3, 4, 5, 8, 13}) {
      cases.push_back(BarrierCase{kind, members, 50});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BarrierTest,
                         ::testing::ValuesIn(barrier_cases()));

TEST(BarrierTest, SingleMemberNeverBlocks) {
  for (const auto kind : {BarrierKind::kCentral, BarrierKind::kTree}) {
    auto barrier = Barrier::create(kind, 1);
    for (int i = 0; i < 1000; ++i) barrier->wait(0);
    SUCCEED();
  }
}

TEST(BarrierTest, TreeFaninMatchesArity) {
  // Structural smoke: a 17-member tree barrier must still round-trip.
  auto barrier = Barrier::create(BarrierKind::kTree, 17);
  std::vector<std::thread> threads;
  for (i32 tid = 0; tid < 17; ++tid) {
    threads.emplace_back([&, tid] {
      for (int r = 0; r < 20; ++r) barrier->wait(tid);
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

// -- PhaseSync (DESIGN.md S11.2) ---------------------------------------------

TEST(PhaseSyncTest, PayloadPublishedBeforeTokenIsVisibleToAwaiter) {
  // Producer chains payload phases; the consumer must read each phase's
  // exact payload — a token visible before its payload would show stale
  // bytes here (and TSan would flag the unfenced copy).
  // Payload lifetime is bounded by the next publish to the same slot (in
  // algo kernels the region join provides that fence), so the consumer acks
  // each phase on its own slot before the producer overwrites.
  constexpr int kPhases = 2000;
  PhaseSync sync(2);
  std::thread producer([&] {
    for (u64 seq = 1; seq <= kPhases; ++seq) {
      const u64 payload = seq * 0x9e3779b97f4a7c15ull;
      sync.publish(0, seq, &payload, sizeof(payload));
      ASSERT_TRUE(sync.await(1, seq));  // consumer ack fences slot reuse
    }
  });
  for (u64 seq = 1; seq <= kPhases; ++seq) {
    u64 got = 0;
    ASSERT_TRUE(sync.await(0, seq, &got, sizeof(got)));
    ASSERT_EQ(got, seq * 0x9e3779b97f4a7c15ull) << "seq=" << seq;
    sync.publish(1, seq);
  }
  producer.join();
}

TEST(PhaseSyncTest, AwaitAllBlocksUntilEveryMemberArrives) {
  constexpr i32 kMembers = 8;
  constexpr int kRounds = 200;
  PhaseSync sync(kMembers);
  std::atomic<int> counter{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (i32 tid = 0; tid < kMembers; ++tid) {
    threads.emplace_back([&, tid] {
      for (int round = 1; round <= kRounds; ++round) {
        counter.fetch_add(1, std::memory_order_acq_rel);
        const u64 seq = static_cast<u64>(2 * round - 1);
        sync.publish(tid, seq);
        if (!sync.await_all(seq)) failures.fetch_add(1);
        if (counter.load(std::memory_order_acquire) < kMembers * round) {
          failures.fetch_add(1);
        }
        // Second edge separates the read from the next round's increments.
        sync.publish(tid, seq + 1);
        if (!sync.await_all(seq + 1)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(counter.load(), kMembers * kRounds);
}

TEST(PhaseSyncTest, AwaitOnSeqAlreadyPassedReturnsImmediately) {
  PhaseSync sync(1);
  const u64 payload = 0xabcdefull;
  sync.publish(0, 5, &payload, sizeof(payload));
  u64 got = 0;
  // Awaiting any seq <= the published token succeeds without blocking.
  EXPECT_TRUE(sync.await(0, 3, &got, sizeof(got)));
  EXPECT_EQ(got, payload);
  EXPECT_TRUE(sync.await(0, 5, &got, sizeof(got)));
}

TEST(PhaseSyncTest, AwaitAbandonsWhenCancelBitRaised) {
  PhaseSync sync(2);
  std::atomic<i32> cancel{0};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(0x2, std::memory_order_seq_cst);
  });
  // Member 1 never publishes; the await must return false once the watched
  // bit appears instead of spinning forever.
  u64 got = 0;
  EXPECT_FALSE(sync.await(1, 1, &got, sizeof(got), &cancel, 0x2));
  canceller.join();

  // A mask miss keeps waiting: raise the right bit from another thread.
  cancel.store(0, std::memory_order_seq_cst);
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const u64 payload = 99;
    sync.publish(1, 1, &payload, sizeof(payload));
  });
  EXPECT_TRUE(sync.await(1, 1, &got, sizeof(got), &cancel, 0x4));
  EXPECT_EQ(got, 99u);
  publisher.join();
}

TEST(PhaseSyncTest, AwaitAllAbandonsWhenCancelBitRaised) {
  PhaseSync sync(3);
  sync.publish(0, 1);
  sync.publish(2, 1);  // member 1 missing
  std::atomic<i32> cancel{0};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(0x1, std::memory_order_seq_cst);
  });
  EXPECT_FALSE(sync.await_all(1, &cancel, 0x1));
  canceller.join();
}

TEST(PhaseSyncTest, SlotReuseAcrossManySeqsKeepsPayloadsDistinct) {
  // Tokens are monotonically increasing across the life of the structure
  // (hot-team rearm keeps the counter, never resets it); late awaiters on
  // old seqs still succeed and see the LATEST payload, which is the
  // documented contract — payload lifetime is bounded by the region join.
  PhaseSync sync(1);
  for (u64 seq = 1; seq <= 100; ++seq) {
    sync.publish(0, seq, &seq, sizeof(seq));
    u64 got = 0;
    ASSERT_TRUE(sync.await(0, seq, &got, sizeof(got)));
    ASSERT_EQ(got, seq);
  }
}

}  // namespace
}  // namespace zomp::rt
