// Transform tests: capture analysis and the outlining rewrite (the paper's
// Figure 1 machinery), validated on AST dumps and structure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/capture.h"
#include "core/pipeline.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace zomp::core {
namespace {

// ---------------------------------------------------------------------------
// Capture (free-variable) analysis
// ---------------------------------------------------------------------------

std::vector<std::string> captures_of(const std::string& fn_body_text) {
  const std::string source =
      "var g: i64 = 0;\nfn helper() void {}\nfn f(a: i64, x: []f64) void " +
      fn_body_text;
  lang::SourceFile file("cap.mz", source);
  lang::Diagnostics diags;
  lang::Lexer lexer(file, diags);
  lang::Parser parser(lexer.lex(), diags);
  auto module = parser.parse_module("cap");
  EXPECT_FALSE(diags.has_errors()) << diags.render(file);
  const ModuleNames names = ModuleNames::collect(*module);
  return free_variables(*module->find_function("f")->body, names);
}

TEST(CaptureTest, ParamsAreFree) {
  EXPECT_EQ(captures_of("{ x[a] = 1.0; }"),
            (std::vector<std::string>{"x", "a"}));
}

TEST(CaptureTest, LocalsAreBound) {
  EXPECT_EQ(captures_of("{ var t: i64 = 1; t += 2; }"),
            std::vector<std::string>{});
}

TEST(CaptureTest, GlobalsAndFunctionsNotCaptured) {
  EXPECT_EQ(captures_of("{ g += 1; helper(); }"), std::vector<std::string>{});
}

TEST(CaptureTest, OrderIsFirstUse) {
  EXPECT_EQ(captures_of("{ var t: f64 = x[0]; t += @floatFromInt(a); }"),
            (std::vector<std::string>{"x", "a"}));
}

TEST(CaptureTest, LoopVariableIsBoundInBody) {
  EXPECT_EQ(captures_of("{ for (0..a) |i| { x[i] = 0.0; } }"),
            (std::vector<std::string>{"a", "x"}));
}

TEST(CaptureTest, ShadowingRespected) {
  // Inner declaration of `a` binds later uses; the initialiser still refers
  // to the outer `a`.
  EXPECT_EQ(captures_of("{ var a: i64 = 3; a += 1; }"),
            std::vector<std::string>{});
  EXPECT_EQ(captures_of("{ { var q: i64 = a; } }"),
            (std::vector<std::string>{"a"}));
}

TEST(CaptureTest, UseBeforeLocalDeclIsFree) {
  // `a` used before a same-block declaration of `a`: block-scope tracking
  // must count the first use as the outer variable.
  EXPECT_EQ(captures_of("{ var t: i64 = a; { var a: i64 = 1; a += 1; } t += a; }"),
            (std::vector<std::string>{"a"}));
}

// ---------------------------------------------------------------------------
// Transform structure (via the pipeline, pre-backend dumps)
// ---------------------------------------------------------------------------

std::string transformed_dump(const std::string& source, bool expect_ok = true) {
  auto result = compile_source(source, {true, "t"});
  EXPECT_EQ(result.ok, expect_ok) << result.diagnostics_text();
  if (!result.module) return "";
  return lang::dump_ast(*result.module);
}

TEST(TransformTest, ParallelOutlinesRegion) {
  const std::string out = transformed_dump(R"(
fn f() void {
  var total: i64 = 0;
  //#omp parallel
  {
    total += 1;
  }
}
)");
  EXPECT_NE(out.find("(omp-fork __omp_f_parallel_0 [total shared-ptr])"),
            std::string::npos);
  EXPECT_NE(out.find("(outlined-fn __omp_f_parallel_0 (total:i64) void"),
            std::string::npos);
}

TEST(TransformTest, SharedSliceRefinedBySema) {
  const std::string out = transformed_dump(R"(
fn f(x: []f64) void {
  //#omp parallel
  {
    x[0] = 1.0;
  }
}
)");
  EXPECT_NE(out.find("[x shared-slice]"), std::string::npos);
  EXPECT_NE(out.find("(x:[]f64)"), std::string::npos);
}

TEST(TransformTest, PrivateAndFirstprivateAreValueCaptures) {
  const std::string out = transformed_dump(R"(
fn f() void {
  var a: i64 = 1;
  var b: i64 = 2;
  //#omp parallel private(a) firstprivate(b)
  {
    a = b;
  }
}
)");
  EXPECT_NE(out.find("[a value]"), std::string::npos);
  EXPECT_NE(out.find("[b value]"), std::string::npos);
}

TEST(TransformTest, ReductionMaterialisesInitAndCombine) {
  const std::string out = transformed_dump(R"(
fn f(n: i64) f64 {
  var s: f64 = 0.0;
  //#omp parallel for reduction(+: s)
  for (0..n) |i| {
    s += 1.0;
  }
  return s;
}
)");
  EXPECT_NE(out.find("[s reduction-ptr +]"), std::string::npos);
  EXPECT_NE(out.find("(omp-red-init s + from s__red)"), std::string::npos);
  EXPECT_NE(out.find("(omp-red-combine s__red + s)"), std::string::npos);
}

TEST(TransformTest, StandaloneForReductionCombinesIntoVisibleVar) {
  const std::string out = transformed_dump(R"(
fn f(n: i64) f64 {
  var s: f64 = 0.0;
  //#omp parallel
  {
    //#omp for reduction(+: s)
    for (0..n) |i| {
      s += 1.0;
    }
  }
  return s;
}
)");
  // Private accumulator with renamed body references + combine + barrier.
  EXPECT_NE(out.find("(omp-red-init s__prv + from s)"), std::string::npos);
  EXPECT_NE(out.find("(assign += s__prv 1)"), std::string::npos)
      << "loop body must be renamed to the private accumulator";
  EXPECT_NE(out.find("(omp-red-combine s + s__prv)"), std::string::npos);
  EXPECT_NE(out.find("(omp-barrier)"), std::string::npos);
}

TEST(TransformTest, CombinedParallelForNestsWsLoopInRegion) {
  auto result = compile_source(R"(
fn f(x: []f64) void {
  const n: i64 = x.len;
  //#omp parallel for schedule(dynamic, 4)
  for (0..n) |i| {
    x[i] = 0.0;
  }
}
)");
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.stats.regions_outlined, 1);
  EXPECT_EQ(result.stats.ws_loops, 1);
  const std::string out = lang::dump_ast(*result.module);
  EXPECT_NE(out.find("schedule=dynamic chunk=4"), std::string::npos);
  // Combined form: no explicit barrier on the loop (join barrier covers it).
  EXPECT_NE(out.find("nowait"), std::string::npos);
}

TEST(TransformTest, LastprivateCreatesPrivateCopyAndWriteback) {
  const std::string out = transformed_dump(R"(
fn f(n: i64) i64 {
  var last: i64 = 0;
  //#omp parallel for lastprivate(last)
  for (0..n) |i| {
    last = i;
  }
  return last;
}
)");
  EXPECT_NE(out.find("last__lp"), std::string::npos);
  EXPECT_NE(out.find("lastprivate=last__lp->last"), std::string::npos);
}

TEST(TransformTest, StandaloneBarrierAndTaskwait) {
  const std::string out = transformed_dump(R"(
fn f() void {
  //#omp parallel
  {
    //#omp barrier
    //#omp taskwait
  }
}
)");
  EXPECT_NE(out.find("(omp-barrier)"), std::string::npos);
  EXPECT_NE(out.find("(omp-taskwait)"), std::string::npos);
}

TEST(TransformTest, BarrierBeforeStatementKeepsStatement) {
  const std::string out = transformed_dump(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel
  {
    //#omp barrier
    a += 1;
  }
}
)");
  // Both the barrier and the increment must survive.
  EXPECT_NE(out.find("(omp-barrier)"), std::string::npos);
  EXPECT_NE(out.find("(assign += a 1)"), std::string::npos);
}

TEST(TransformTest, CriticalSingleMasterAtomicOrdered) {
  const std::string out = transformed_dump(R"(
fn f(n: i64) void {
  var t: i64 = 0;
  //#omp parallel
  {
    //#omp critical(updates)
    {
      t += 1;
    }
    //#omp single nowait
    {
      t += 1;
    }
    //#omp master
    {
      t += 1;
    }
    //#omp atomic
    t += 1;
    //#omp for ordered
    for (0..n) |i| {
      //#omp ordered
      {
        t += 1;
      }
    }
  }
}
)");
  EXPECT_NE(out.find("(omp-critical \"updates\""), std::string::npos);
  EXPECT_NE(out.find("(omp-single nowait"), std::string::npos);
  EXPECT_NE(out.find("(omp-master"), std::string::npos);
  EXPECT_NE(out.find("(omp-atomic"), std::string::npos);
  EXPECT_NE(out.find("(omp-ordered"), std::string::npos);
  EXPECT_NE(out.find("ordered"), std::string::npos);
}

TEST(TransformTest, TaskSharingFollowsEnclosingContext) {
  // `v` is (implicitly) shared in the enclosing parallel region, so the task
  // keeps it shared; `w` is a region-local, so the task firstprivatises it
  // (OpenMP 5.2 task data-sharing defaults).
  const std::string out = transformed_dump(R"(
fn f(v: i64) void {
  //#omp parallel
  {
    var w: i64 = 3;
    //#omp task
    {
      var u: i64 = v + w;
      u += 1;
    }
    //#omp taskwait
  }
}
)");
  EXPECT_NE(out.find("(omp-task __omp_"), std::string::npos);
  EXPECT_NE(out.find("[v shared-ptr]"), std::string::npos);
  EXPECT_NE(out.find("[w value]"), std::string::npos);
}

TEST(TransformTest, TaskExplicitClausesOverrideInheritance) {
  const std::string out = transformed_dump(R"(
fn f(v: i64) void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp task firstprivate(v) shared(acc)
    {
      acc += v;
    }
  }
}
)");
  EXPECT_NE(out.find("[acc shared-ptr]"), std::string::npos);
  EXPECT_NE(out.find("[v value]"), std::string::npos);
}

TEST(TransformTest, NestedParallelOutlinesTwice) {
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel
  {
    //#omp parallel
    {
      a += 1;
    }
  }
}
)");
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.stats.regions_outlined, 2);
  int outlined = 0;
  for (const auto& fn : result.module->functions) {
    if (fn->is_outlined) ++outlined;
  }
  EXPECT_EQ(outlined, 2);
}

// -- Collapse canonicalization -------------------------------------------------

TEST(TransformTest, CollapseTwoLinearizesNest) {
  auto result = compile_source(R"(
fn f(h: i64, w: i64) i64 {
  var acc: i64 = 0;
  //#omp parallel for collapse(2) reduction(+: acc)
  for (0..h) |y| {
    for (0..w) |x| {
      acc += y * w + x;
    }
  }
  return acc;
}
)");
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.stats.ws_loops, 1);
  const std::string out = lang::dump_ast(*result.module);
  // One linearized loop over the synthesized total, carrying nest metadata.
  EXPECT_NE(out.find("collapse=2[y x]"), std::string::npos) << out;
  EXPECT_NE(out.find("__omp_c0_total"), std::string::npos);
  EXPECT_NE(out.find("__omp_c0_flat"), std::string::npos);
  // The inner for loop is gone: only the flat loop remains inside the region.
  EXPECT_EQ(out.find("(for y"), std::string::npos) << out;
  EXPECT_EQ(out.find("(for x"), std::string::npos) << out;
}

TEST(TransformTest, CollapseThreeWithLastprivate) {
  const std::string out = transformed_dump(R"(
fn f(a: i64, b: i64, c: i64) i64 {
  var last: i64 = 0;
  //#omp parallel for collapse(3) lastprivate(last)
  for (0..a) |i| {
    for (0..b) |j| {
      for (0..c) |k| {
        last = i + j + k;
      }
    }
  }
  return last;
}
)");
  EXPECT_NE(out.find("collapse=3[i j k]"), std::string::npos) << out;
  EXPECT_NE(out.find("lastprivate=last__lp->last"), std::string::npos);
}

TEST(TransformTest, CollapseRejectsImperfectNest) {
  auto result = compile_source(R"(
fn f(h: i64, w: i64) void {
  var acc: i64 = 0;
  //#omp parallel for collapse(2)
  for (0..h) |y| {
    acc += 1;
    for (0..w) |x| {
      acc += x;
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("perfectly nested"),
            std::string::npos);
}

TEST(TransformTest, CollapseRejectsNonRectangularNest) {
  auto result = compile_source(R"(
fn f(h: i64) void {
  var acc: i64 = 0;
  //#omp parallel for collapse(2)
  for (0..h) |y| {
    for (0..y) |x| {
      acc += x;
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("rectangular"), std::string::npos);
}

TEST(TransformTest, CollapseRejectsDirectiveBetweenLoops) {
  auto result = compile_source(R"(
fn f(h: i64, w: i64) void {
  var acc: i64 = 0;
  //#omp parallel for collapse(2)
  for (0..h) |y| {
    //#omp critical
    for (0..w) |x| {
      acc += x;
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("between the collapsed loops"),
            std::string::npos);
}

TEST(TransformTest, CollapseRejectsRepeatedLoopVariable) {
  auto result = compile_source(R"(
fn f(h: i64, w: i64) void {
  var acc: i64 = 0;
  //#omp parallel for collapse(2)
  for (0..h) |i| {
    for (0..w) |i| {
      acc += i;
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("distinct"), std::string::npos);
}

TEST(TransformTest, LastprivateOfLoopVariableRejected) {
  // MiniZig loop variables are per-iteration constants with no post-loop
  // value; privatizing one would silently write zeros into the shadowed
  // outer variable.
  auto result = compile_source(R"(
fn f(h: i64, w: i64) void {
  var x: i64 = 0;
  var acc: i64 = 0;
  //#omp parallel for collapse(2) lastprivate(x)
  for (0..h) |y| {
    for (0..w) |x| {
      acc += x;
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("loop variable of the associated"),
            std::string::npos);
}

TEST(TransformTest, LastprivateBoundReadsOriginalVariable) {
  // The loop bound must read the *original* variable, not the
  // value-initialized private copy — only body references move to it.
  const std::string out = transformed_dump(R"(
fn f() i64 {
  var n: i64 = 10;
  //#omp parallel for lastprivate(n)
  for (0..n) |i| {
    n = i;
  }
  return n;
}
)");
  // The ws loop header still ranges over `n`; the body assigns `n__lp`.
  EXPECT_NE(out.find("in 0 .. n\n"), std::string::npos) << out;
  EXPECT_NE(out.find("(assign = n__lp i)"), std::string::npos) << out;
}

TEST(TransformTest, CollapseBoundsAreCapturedNotLoopVars) {
  // The nest bounds move into the synthesized prolog inside the region, so
  // `h`/`w` are captured; the loop variables must NOT be (the backends
  // rebind them per iteration from the collapse metadata).
  const std::string out = transformed_dump(R"(
fn f(h: i64, w: i64, x: []f64) void {
  //#omp parallel for collapse(2)
  for (0..h) |i| {
    for (0..w) |j| {
      x[i * w + j] = 1.0;
    }
  }
}
)");
  EXPECT_NE(out.find("[h shared-ptr]"), std::string::npos) << out;
  EXPECT_NE(out.find("[w shared-ptr]"), std::string::npos);
  EXPECT_EQ(out.find("[i shared-ptr]"), std::string::npos) << out;
  EXPECT_EQ(out.find("[j shared-ptr]"), std::string::npos);
}

// -- Negative cases ------------------------------------------------------------

TEST(TransformTest, DefaultNoneRequiresExplicitClauses) {
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel default(none)
  {
    a += 1;
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("default(none)"), std::string::npos);
}

TEST(TransformTest, DefaultNoneDiagnosticPointsAtUseAndSuggestsClause) {
  // `a` accumulates via += inside the region: the diagnostic must point at
  // the use (line 6, not the directive line) and suggest reduction(+: a).
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel default(none)
  {
    a += 1;
  }
}
)");
  EXPECT_FALSE(result.ok);
  const std::string text = result.diagnostics_text();
  EXPECT_NE(text.find("reduction(+: a)"), std::string::npos) << text;
  EXPECT_NE(text.find("6:"), std::string::npos)
      << "diagnostic should point at the first use on line 6: " << text;
}

TEST(TransformTest, DefaultNoneDiagnosticSuggestsForReadOnlyUse) {
  auto result = compile_source(R"(
fn f(n: i64) void {
  var t: i64 = 0;
  //#omp parallel default(none) private(t)
  {
    t = n;
  }
}
)");
  EXPECT_FALSE(result.ok);
  const std::string text = result.diagnostics_text();
  // `n` is only read: shared or firstprivate are the right fixes.
  EXPECT_NE(text.find("shared(n)"), std::string::npos) << text;
  EXPECT_NE(text.find("firstprivate(n)"), std::string::npos) << text;
}

TEST(TransformTest, DefaultNoneSatisfiedByClauses) {
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel default(none) shared(a)
  {
    a += 1;
  }
}
)");
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
}

TEST(TransformTest, ParallelForNeedsLoop) {
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel for
  a += 1;
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("must immediately precede a for"),
            std::string::npos);
}

TEST(TransformTest, AtomicNeedsCompoundAssignment) {
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel
  {
    //#omp atomic
    a = 1;
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("compound assignment"),
            std::string::npos);
}

TEST(TransformTest, VariableInTwoClausesRejected) {
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp parallel shared(a) private(a)
  {
    a += 1;
  }
}
)");
  EXPECT_FALSE(result.ok);
}

TEST(TransformTest, NoOmpModeIgnoresDirectives) {
  CompileOptions options;
  options.openmp = false;
  auto result = compile_source(R"(
fn f(n: i64) f64 {
  var s: f64 = 0.0;
  //#omp parallel for reduction(+: s)
  for (0..n) |i| {
    s += 1.0;
  }
  return s;
}
)",
                               options);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.stats.regions_outlined, 0);
  const std::string out = lang::dump_ast(*result.module);
  EXPECT_EQ(out.find("omp-fork"), std::string::npos);
}

}  // namespace
}  // namespace zomp::core
