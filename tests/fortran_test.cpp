// Fortran interop shim tests: mangling schemes, binding generation, layout
// views, and the real kernel exports behind the Table 1 harness.
#include <gtest/gtest.h>

#include <vector>

#include "fortran/fview.h"
#include "fortran/mangle.h"
#include "npb/cg.h"
#include "npb/ep.h"
#include "npb/fortran_iface.h"

namespace zomp::fortran {
namespace {

TEST(MangleTest, GnuSchemeLowercasesAndAppendsUnderscore) {
  EXPECT_EQ(mangle("CONJ_GRAD"), "conj_grad_");
  EXPECT_EQ(mangle("daxpy"), "daxpy_");
  EXPECT_EQ(mangle("MixedCase"), "mixedcase_");
}

TEST(MangleTest, F2cSchemeDoublesUnderscoreWhenNamed) {
  EXPECT_EQ(mangle("conj_grad", MangleScheme::kF2c), "conj_grad__");
  EXPECT_EQ(mangle("daxpy", MangleScheme::kF2c), "daxpy_");
}

TEST(BindingTest, MiniZigDeclarationShape) {
  FProc proc{"VRANLC",
             {FArg::kInteger, FArg::kReal, FArg::kReal, FArg::kRealArray},
             false};
  EXPECT_EQ(minizig_binding(proc),
            "extern fn vranlc_(a0: *i64, a1: *f64, a2: *f64, a3: *f64) void;");
}

TEST(BindingTest, FunctionReturningReal) {
  FProc proc{"randlc", {FArg::kReal, FArg::kReal}, true};
  EXPECT_EQ(minizig_binding(proc),
            "extern fn randlc_(a0: *f64, a1: *f64) f64;");
  EXPECT_EQ(cpp_prototype(proc),
            "extern \"C\" double randlc_(double* a0, double* a1);");
}

TEST(BindingTest, CppPrototypeMatchesHandWrittenIface) {
  // The declarations in npb/fortran_iface.h were written by hand (as the
  // paper's authors write their extern declarations); the generator must
  // agree with them for the same signatures.
  FProc ep{"EP_KERNEL",
           {FArg::kInteger, FArg::kInteger, FArg::kReal, FArg::kReal,
            FArg::kInteger},
           false};
  EXPECT_EQ(cpp_prototype(ep),
            "extern \"C\" void ep_kernel_(std::int64_t* a0, std::int64_t* a1, "
            "double* a2, double* a3, std::int64_t* a4);");
}

TEST(FViewTest, ColMajorLayoutIsFortranOrder) {
  // 3x2 array, leading dimension 3: memory is column after column.
  std::vector<double> storage(6, 0.0);
  ColMajorView<double> a(storage.data(), 3);
  int v = 1;
  for (std::int64_t j = 1; j <= 2; ++j) {
    for (std::int64_t i = 1; i <= 3; ++i) {
      a(i, j) = v++;
    }
  }
  // Column-major: flat = [A(1,1) A(2,1) A(3,1) A(1,2) A(2,2) A(3,2)].
  EXPECT_EQ(storage, (std::vector<double>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(a(3, 2), 6.0);
}

TEST(FViewTest, LeadingDimensionPadding) {
  // ld > rows (Fortran submatrix views): element (1,2) skips the padding.
  std::vector<double> storage(8, -1.0);
  ColMajorView<double> a(storage.data(), 4);
  a(1, 2) = 9.0;
  EXPECT_EQ(storage[4], 9.0);
}

TEST(FViewTest, FVectorIsOneBased) {
  std::vector<double> storage{10, 20, 30};
  FVector<double> v(storage.data());
  EXPECT_EQ(v(1), 10.0);
  EXPECT_EQ(v(3), 30.0);
  v(2) = 25.0;
  EXPECT_EQ(storage[1], 25.0);
}

// -- The exported kernels behind Table 1 -----------------------------------------

TEST(FortranIfaceTest, EpKernelMatchesDirectCall) {
  const std::int64_t m = 18;
  const std::int64_t threads = 2;
  double sx = 0.0, sy = 0.0;
  std::int64_t accepted = 0;
  ep_kernel_(&m, &threads, &sx, &sy, &accepted);

  const zomp::npb::EpResult direct = zomp::npb::ep_serial(18);
  EXPECT_NEAR(sx, direct.sx, 1e-7);
  EXPECT_NEAR(sy, direct.sy, 1e-7);
  EXPECT_EQ(accepted, direct.pairs_in_disc);
}

TEST(FortranIfaceTest, CgSolveMatchesDirectCall) {
  const zomp::npb::CgClass cls = zomp::npb::cg_class('m');
  zomp::npb::SparseMatrix a = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  const std::int64_t n = a.n, niter = cls.niter, threads = 2;
  double zeta = 0.0, rnorm = 0.0;
  cg_solve_(&n, a.rowstr.data(), a.colidx.data(), a.values.data(), &niter,
            &cls.shift, &threads, &zeta, &rnorm);

  const zomp::npb::CgResult direct = zomp::npb::cg_serial(a, cls.niter, cls.shift);
  EXPECT_DOUBLE_EQ(zeta, direct.zeta);
  EXPECT_LT(rnorm, 1e-8);
}

}  // namespace
}  // namespace zomp::fortran
