// Parser tests: golden AST dumps per construct, directive attachment, and
// error recovery.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "lang/lexer.h"
#include "lang/parser.h"

namespace zomp::lang {
namespace {

std::unique_ptr<Module> parse(const std::string& text, Diagnostics& diags) {
  SourceFile file("test.mz", text);
  Lexer lexer(file, diags);
  Parser parser(lexer.lex(), diags);
  return parser.parse_module("test");
}

std::string dump(const std::string& text) {
  Diagnostics diags;
  auto module = parse(text, diags);
  EXPECT_FALSE(diags.has_errors()) << text;
  return dump_ast(*module);
}

TEST(ParserTest, MinimalFunction) {
  const std::string out = dump("fn f() void {}");
  EXPECT_NE(out.find("(fn f () void"), std::string::npos);
}

TEST(ParserTest, ParamsAndReturnTypes) {
  const std::string out = dump("fn f(a: i64, x: []f64, p: *i64) f64 { return 1.0; }");
  EXPECT_NE(out.find("(fn f (a:i64 x:[]f64 p:*i64) f64"), std::string::npos);
  EXPECT_NE(out.find("(return 1)"), std::string::npos);
}

TEST(ParserTest, ExternDeclaration) {
  const std::string out = dump("extern fn get() i64;");
  EXPECT_NE(out.find("(extern-fn get () i64"), std::string::npos);
}

TEST(ParserTest, PubMain) {
  Diagnostics diags;
  auto module = parse("pub fn main() void {}", diags);
  ASSERT_EQ(module->functions.size(), 1u);
  EXPECT_TRUE(module->functions[0]->is_pub);
}

TEST(ParserTest, VarAndConstDecls) {
  const std::string out = dump(
      "fn f() void { var a: i64 = 1; const b = 2.5; var c: f64 = undefined; }");
  EXPECT_NE(out.find("(var a : i64 = 1)"), std::string::npos);
  EXPECT_NE(out.find("(const b = 2.5)"), std::string::npos);
  EXPECT_NE(out.find("(var c : f64 = undefined)"), std::string::npos);
}

TEST(ParserTest, OperatorPrecedence) {
  const std::string out = dump("fn f() i64 { return 1 + 2 * 3; }");
  EXPECT_NE(out.find("(+ 1 (* 2 3))"), std::string::npos);
  const std::string cmp = dump("fn f() bool { return 1 + 2 < 3 * 4; }");
  EXPECT_NE(cmp.find("(< (+ 1 2) (* 3 4))"), std::string::npos);
  const std::string logic = dump("fn f(a: bool, b: bool, c: bool) bool { return a or b and c; }");
  EXPECT_NE(logic.find("(or a (and b c))"), std::string::npos);
}

TEST(ParserTest, UnaryAndPostfix) {
  const std::string out =
      dump("fn f(x: []f64, p: *f64) f64 { return -x[0] + p.* + "
           "@floatFromInt(x.len); }");
  EXPECT_NE(out.find("(- (index x 0))"), std::string::npos);
  EXPECT_NE(out.find("(deref p)"), std::string::npos);
  EXPECT_NE(out.find("(@floatFromInt (len x))"), std::string::npos);
}

TEST(ParserTest, AddressOf) {
  const std::string out = dump("fn g(p: *i64) void {} fn f() void { var x: i64 = 0; g(&x); }");
  EXPECT_NE(out.find("(call g (& x))"), std::string::npos);
}

TEST(ParserTest, IfElseChain) {
  const std::string out = dump(
      "fn f(a: i64) i64 { if (a > 0) { return 1; } else if (a < 0) { return "
      "2; } else { return 3; } }");
  EXPECT_NE(out.find("(if (> a 0)"), std::string::npos);
  EXPECT_NE(out.find("(if (< a 0)"), std::string::npos);
}

TEST(ParserTest, WhileWithContinueExpression) {
  const std::string out =
      dump("fn f() void { var i: i64 = 0; while (i < 10) : (i += 1) {} }");
  EXPECT_NE(out.find("(while (< i 10)"), std::string::npos);
  EXPECT_NE(out.find("(assign += i 1)"), std::string::npos);
}

TEST(ParserTest, ForRange) {
  const std::string out = dump("fn f(n: i64) void { for (0..n) |i| {} }");
  EXPECT_NE(out.find("(for i in 0 .. n"), std::string::npos);
}

TEST(ParserTest, BreakContinue) {
  const std::string out = dump(
      "fn f() void { var i: i64 = 0; while (true) { if (i > 3) { break; } "
      "continue; } }");
  EXPECT_NE(out.find("(break)"), std::string::npos);
  EXPECT_NE(out.find("(continue)"), std::string::npos);
}

TEST(ParserTest, CompoundAssignToIndex) {
  const std::string out = dump("fn f(x: []f64) void { x[3] += 1.5; }");
  EXPECT_NE(out.find("(assign += (index x 3) 1.5)"), std::string::npos);
}

TEST(ParserTest, GlobalsParse) {
  Diagnostics diags;
  auto module = parse("const N: i64 = 100;\nvar counter: i64 = 0;\nfn f() void {}", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(module->globals.size(), 2u);
}

TEST(ParserTest, BuiltinAllocTakesTypeArgument) {
  const std::string out = dump("fn f(n: i64) void { var x = @alloc(f64, n); @free(x); }");
  EXPECT_NE(out.find("(@alloc f64 n)"), std::string::npos);
  EXPECT_NE(out.find("(@free x)"), std::string::npos);
}

// -- Directive attachment ----------------------------------------------------

TEST(ParserTest, DirectiveAttachesToFollowingStatement) {
  Diagnostics diags;
  auto module = parse(
      "fn f(n: i64) void {\n"
      "  //#omp parallel for\n"
      "  for (0..n) |i| {}\n"
      "}",
      diags);
  ASSERT_FALSE(diags.has_errors());
  const Stmt& body = *module->functions[0]->body;
  ASSERT_EQ(body.stmts.size(), 1u);
  ASSERT_EQ(body.stmts[0]->pending_directives.size(), 1u);
  EXPECT_EQ(body.stmts[0]->pending_directives[0].first, " parallel for");
}

TEST(ParserTest, MultipleDirectivesStack) {
  Diagnostics diags;
  auto module = parse(
      "fn f(n: i64) void {\n"
      "  //#omp parallel\n"
      "  //#omp for\n"
      "  for (0..n) |i| {}\n"
      "}",
      diags);
  ASSERT_FALSE(diags.has_errors());
  const Stmt& body = *module->functions[0]->body;
  ASSERT_EQ(body.stmts[0]->pending_directives.size(), 2u);
  EXPECT_EQ(body.stmts[0]->pending_directives[0].first, " parallel");
  EXPECT_EQ(body.stmts[0]->pending_directives[1].first, " for");
}

TEST(ParserTest, TrailingDirectiveGetsPlaceholder) {
  Diagnostics diags;
  auto module = parse(
      "fn f() void {\n"
      "  var x: i64 = 0;\n"
      "  //#omp barrier\n"
      "}",
      diags);
  ASSERT_FALSE(diags.has_errors());
  const Stmt& body = *module->functions[0]->body;
  ASSERT_EQ(body.stmts.size(), 2u);
  EXPECT_EQ(body.stmts[1]->kind, Stmt::Kind::kBlock);
  EXPECT_TRUE(body.stmts[1]->stmts.empty());
  ASSERT_EQ(body.stmts[1]->pending_directives.size(), 1u);
}

TEST(ParserTest, DirectiveAtModuleLevelIsError) {
  Diagnostics diags;
  parse("//#omp parallel\nfn f() void {}", diags);
  EXPECT_TRUE(diags.has_errors());
}

// -- Errors / recovery ---------------------------------------------------------

TEST(ParserTest, MissingSemicolonIsError) {
  Diagnostics diags;
  parse("fn f() void { var x: i64 = 1 }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(ParserTest, UndefinedWithoutTypeIsError) {
  Diagnostics diags;
  parse("fn f() void { var x = undefined; }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(ParserTest, UnknownTypeIsError) {
  Diagnostics diags;
  parse("fn f(a: banana) void {}", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(ParserTest, RecoversToNextDeclaration) {
  Diagnostics diags;
  auto module = parse("fn broken( { } fn ok() void {}", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(module->find_function("ok"), nullptr);
}

TEST(ParserTest, UnknownFieldIsError) {
  Diagnostics diags;
  parse("fn f(x: []f64) i64 { return x.size; }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(ParserTest, ExpressionParserEntrypoint) {
  SourceFile file("e.mz", "1 + 2 * x");
  Diagnostics diags;
  Lexer lexer(file, diags);
  ExprPtr e = Parser::parse_expression(lexer.lex(), diags);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(dump_expr(*e), "(+ 1 (* 2 x))");
}

TEST(ParserTest, ExpressionEntrypointRejectsTrailingTokens) {
  SourceFile file("e.mz", "1 + 2 garbage");
  Diagnostics diags;
  Lexer lexer(file, diags);
  Parser::parse_expression(lexer.lex(), diags);
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace zomp::lang
