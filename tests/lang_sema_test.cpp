// Semantic analysis tests: typing rules, scoping, and the diagnostics that
// keep MiniZig's "no implicit conversions" (Zig-like) discipline.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace zomp::lang {
namespace {

struct SemaRun {
  std::unique_ptr<Module> module;
  Diagnostics diags;
  bool ok = false;
};

SemaRun run_sema(const std::string& text) {
  SemaRun r;
  SourceFile file("test.mz", text);
  Lexer lexer(file, r.diags);
  Parser parser(lexer.lex(), r.diags);
  r.module = parser.parse_module("test");
  if (!r.diags.has_errors()) r.ok = analyze(*r.module, r.diags);
  return r;
}

void expect_ok(const std::string& text) {
  const SemaRun r = run_sema(text);
  std::string messages;
  for (const auto& d : r.diags.all()) messages += d.message + "\n";
  EXPECT_TRUE(r.ok) << text << "\n" << messages;
}

void expect_error(const std::string& text, const std::string& fragment) {
  const SemaRun r = run_sema(text);
  EXPECT_FALSE(r.ok) << text;
  bool found = false;
  for (const auto& d : r.diags.all()) {
    if (d.message.find(fragment) != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "expected a diagnostic containing '" << fragment
                     << "' for:\n"
                     << text;
}

// -- Types and conversions ------------------------------------------------------

TEST(SemaTest, ArithmeticRequiresMatchingNumerics) {
  expect_ok("fn f(a: i64, b: i64) i64 { return a + b; }");
  expect_ok("fn f(a: f64, b: f64) f64 { return a * b; }");
  expect_error("fn f(a: i64, b: f64) f64 { return a + b; }", "matching numeric");
}

TEST(SemaTest, ExplicitConversionsWork) {
  expect_ok("fn f(a: i64) f64 { return @floatFromInt(a) * 2.0; }");
  expect_ok("fn f(a: f64) i64 { return @intFromFloat(a) + 1; }");
}

TEST(SemaTest, ConditionsMustBeBool) {
  expect_error("fn f(a: i64) void { if (a) {} }", "must be bool");
  expect_error("fn f(a: i64) void { while (a) {} }", "must be bool");
  expect_ok("fn f(a: i64) void { if (a > 0) {} }");
}

TEST(SemaTest, LogicalOpsRequireBool) {
  expect_error("fn f(a: i64, b: bool) bool { return a and b; }", "bool");
  expect_ok("fn f(a: bool, b: bool) bool { return a and !b or true; }");
}

TEST(SemaTest, IntegerOnlyOperators) {
  expect_error("fn f(a: f64) f64 { return a % 2.0; }", "i64");
  expect_ok("fn f(a: i64) i64 { return (a % 7) ^ (a << 2) & (a >> 1) | 3; }");
}

TEST(SemaTest, ComparisonYieldsBool) {
  expect_ok("fn f(a: i64) bool { return a == 3; }");
  expect_error("fn f(a: i64, b: f64) bool { return a < b; }", "matching");
  expect_ok("fn f(a: bool) bool { return a == true; }");
  expect_error("fn f(a: bool) bool { return a < true; }", "numeric");
}

TEST(SemaTest, SliceIndexingRules) {
  expect_ok("fn f(x: []f64, i: i64) f64 { return x[i]; }");
  expect_error("fn f(x: []f64) f64 { return x[1.5]; }", "index must be i64");
  expect_error("fn f(x: f64) f64 { return x[0]; }", "requires a slice");
  expect_ok("fn f(x: []f64) i64 { return x.len; }");
  expect_error("fn f(a: i64) i64 { return a.len; }", "requires a slice");
}

TEST(SemaTest, PointerRules) {
  expect_ok("fn f(p: *f64) f64 { return p.*; }");
  expect_ok("fn f(p: *f64, v: f64) void { p.* = v; }");
  expect_error("fn f(a: f64) f64 { return a.*; }", "requires a pointer");
  expect_ok("fn g(p: *i64) void {} fn f() void { var x: i64 = 0; g(&x); }");
  expect_ok("fn g(p: *f64) void {} fn f(x: []f64) void { g(&x[0]); }");
  expect_error("fn f(x: []f64) void { var p = &x; }", "address of a []f64");
}

TEST(SemaTest, VarDeclTypeChecking) {
  expect_ok("fn f() void { var a: f64 = 1.5; const b = a * 2.0; }");
  expect_error("fn f() void { var a: i64 = 1.5; }", "cannot initialise");
  expect_error("fn f() void { var s = \"text\"; }", "@print");
}

TEST(SemaTest, ConstIsImmutable) {
  expect_error("fn f() void { const a = 1; a = 2; }", "cannot assign to const");
  expect_error("fn f(n: i64) void { for (0..n) |i| { i = 3; } }",
               "cannot assign to const");
  // Ordinary (non-outlined) function parameters are const too.
  expect_error("fn f(a: i64) void { a = 2; }", "cannot assign to const");
}

TEST(SemaTest, AssignmentTargets) {
  expect_ok("fn f(x: []f64) void { x[0] = 1.0; }");
  expect_error("fn f() void { 3 = 4; }", "not assignable");
  expect_error("fn f(a: i64) void { (a + 1) = 2; }", "not assignable");
}

// -- Scoping ------------------------------------------------------------------

TEST(SemaTest, UndeclaredIdentifier) {
  expect_error("fn f() i64 { return nope; }", "undeclared identifier");
}

TEST(SemaTest, SameScopeRedeclarationRejected) {
  expect_error("fn f() void { var a: i64 = 1; var a: i64 = 2; }",
               "redeclaration");
}

TEST(SemaTest, ShadowingInNestedScopeAllowed) {
  expect_ok("fn f() void { var a: i64 = 1; { var a: f64 = 2.0; a = 3.0; } a = 4; }");
}

TEST(SemaTest, GlobalsVisibleInFunctions) {
  expect_ok("const N: i64 = 10;\nfn f() i64 { return N * 2; }");
  expect_ok("var total: f64 = 0.0;\nfn bump(v: f64) void { total += v; }");
}

TEST(SemaTest, GlobalInitialisersSeeEarlierGlobals) {
  expect_ok("const A: i64 = 5;\nconst B: i64 = A * 2;\nfn f() i64 { return B; }");
}

TEST(SemaTest, BreakOutsideLoopRejected) {
  expect_error("fn f() void { break; }", "outside of a loop");
  expect_error("fn f() void { continue; }", "outside of a loop");
}

// -- Functions -------------------------------------------------------------------

TEST(SemaTest, CallArityAndTypes) {
  expect_error("fn g(a: i64) void {} fn f() void { g(); }", "expects 1");
  expect_error("fn g(a: i64) void {} fn f() void { g(1.5); }", "expected i64");
  expect_ok("fn g(a: i64) i64 { return a; } fn f() i64 { return g(3); }");
}

TEST(SemaTest, UnknownFunctionRejected) {
  expect_error("fn f() void { g(); }", "unknown function");
}

TEST(SemaTest, DuplicateFunctionRejected) {
  expect_error("fn f() void {} fn f() void {}", "duplicate function");
}

TEST(SemaTest, ReturnTypeChecked) {
  expect_error("fn f() i64 { return 1.5; }", "return type mismatch");
  expect_error("fn f() i64 { return; }", "must return a value");
  expect_ok("fn f() void { return; }");
}

TEST(SemaTest, RecursionTypechecks) {
  expect_ok("fn fib(n: i64) i64 { if (n < 2) { return n; } return fib(n - 1) "
            "+ fib(n - 2); }");
}

// -- Builtins -----------------------------------------------------------------------

TEST(SemaTest, MathBuiltinTypes) {
  expect_ok("fn f(a: f64) f64 { return @sqrt(a) + @exp(a) + @log(a) + "
            "@pow(a, 2.0); }");
  expect_error("fn f(a: i64) f64 { return @sqrt(a); }", "f64");
  expect_ok("fn f(a: i64) i64 { return @abs(a) + @min(a, 3) + @max(a, 0) + "
            "@mod(a, 7); }");
  expect_error("fn f(a: i64, b: f64) i64 { return @min(a, b); }", "matching");
}

TEST(SemaTest, AllocRules) {
  expect_ok("fn f(n: i64) void { var x = @alloc(f64, n); @free(x); }");
  expect_error("fn f() void { var x = @alloc(f64, 1.5); }", "length must be i64");
  expect_error("fn f(a: i64) void { @free(a); }", "needs a slice");
}

TEST(SemaTest, PrintAcceptsScalarsAndStrings) {
  expect_ok("fn f(a: i64, b: f64, c: bool) void { @print(\"x\", a, b, c); }");
  expect_error("fn f(x: []f64) void { @print(x); }", "scalars");
}

TEST(SemaTest, BuiltinArityChecked) {
  expect_error("fn f(a: f64) f64 { return @sqrt(a, a); }", "expects 1");
  expect_error("fn f(a: f64) f64 { return @pow(a); }", "expects 2");
}

// -- OpenMP-transform statements (pre-transformed modules) ------------------------

TEST(SemaTest, PendingDirectivesWithoutEngineWarnButPass) {
  SemaRun r = run_sema(
      "fn f(n: i64) void {\n//#omp parallel for\nfor (0..n) |i| {} }");
  EXPECT_TRUE(r.ok);
  bool warned = false;
  for (const auto& d : r.diags.all()) {
    if (d.severity == Severity::kWarning &&
        d.message.find("ignored") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

}  // namespace
}  // namespace zomp::lang
