// Per-pass golden tests for the -O1 optimizer pipeline (core/passes.h):
// each pass's effect is pinned through the post-pass IR dump
// (CompileOptions::dump_ir, the same hook behind `mzc --dump-ir=<pass>`)
// plus the PassStats counters, and every fusion legality rule has a
// negative test proving the pass refuses the unsafe shape. A final
// interpreter smoke run checks that a fused + static-specialized +
// folded module still computes the same answers as the -O0 module.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/passes.h"
#include "core/pipeline.h"
#include "interp/interp.h"

namespace zomp::core {
namespace {

CompileResult compile_at(const std::string& source, int opt_level,
                         std::vector<std::string> dump_ir = {"all"}) {
  CompileOptions options;
  options.module_name = "passes_test";
  options.opt_level = opt_level;
  options.dump_ir = std::move(dump_ir);
  return compile_source(source, options);
}

/// IR text captured after `pass` ran (empty string + test failure if the
/// pass never reported a dump).
std::string dump_after(const CompileResult& result, const std::string& pass) {
  for (const auto& [name, text] : result.ir_dumps) {
    if (name == pass) return text;
  }
  ADD_FAILURE() << "no IR dump recorded for pass '" << pass << "'";
  return std::string();
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Two adjacent, clause-compatible regions over constant bounds and a
// constant team: the canonical input every optimizer pass fires on
// (fold the bounds + team, static-specialize both loops, fuse the pair,
// then drop the now-dead `n` capture).
const char* kTwoRegions = R"(
pub fn sum_two(out: []i64) void {
  const n: i64 = 1024;
  var s1: i64 = 0;
  var s2: i64 = 0;
  //#omp parallel for reduction(+: s1) num_threads(4)
  for (0..n) |i| {
    s1 += i;
  }
  //#omp parallel for reduction(+: s2) num_threads(4)
  for (0..n) |i| {
    s2 += i * 2;
  }
  out[0] = s1;
  out[1] = s2;
}
)";

// -- pipeline shape ---------------------------------------------------------

TEST(PassPipelineTest, DefaultPipelineOrder) {
  PassManager o1;
  build_default_pipeline(o1, /*opt_level=*/1, /*openmp=*/true);
  const std::vector<std::string> expected = {
      "omp-lower", "sema", "fold", "static-spec", "fuse", "dce-hoist",
      "verify"};
  EXPECT_EQ(o1.pass_names(), expected);

  PassManager o0;
  build_default_pipeline(o0, /*opt_level=*/0, /*openmp=*/true);
  const std::vector<std::string> historical = {"omp-lower", "sema"};
  EXPECT_EQ(o0.pass_names(), historical);
}

TEST(PassPipelineTest, OptLevelZeroRunsNoOptimizerPass) {
  auto result = compile_at(kTwoRegions, /*opt_level=*/0);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  // Only the historical stages dumped anything...
  ASSERT_EQ(result.ir_dumps.size(), 2u);
  EXPECT_EQ(result.ir_dumps[0].first, "omp-lower");
  EXPECT_EQ(result.ir_dumps[1].first, "sema");

  // ...and no optimizer marker reached the module.
  const std::string& final_ir = result.ir_dumps.back().second;
  EXPECT_FALSE(contains(final_ir, "static-spec"));
  EXPECT_FALSE(contains(final_ir, "hoist@"));
  EXPECT_FALSE(contains(final_ir, "__omp_fused"));
  EXPECT_EQ(result.pass_stats.folded_operands, 0);
  EXPECT_EQ(result.pass_stats.static_specialized, 0);
  EXPECT_EQ(result.pass_stats.regions_fused, 0);
  EXPECT_EQ(result.pass_stats.dead_captures, 0);
  EXPECT_EQ(result.pass_stats.hoisted_forks, 0);
}

// -- fold -------------------------------------------------------------------

TEST(FoldPassTest, LiteralizesDirectiveOperandsAndDropsTrueIf) {
  auto result = compile_at(R"(
pub fn fill(a: []i64) void {
  const t: i64 = 2 + 2;
  const n: i64 = 16 * 4;
  //#omp parallel for num_threads(t) if(n > 0)
  for (0..n) |i| {
    a[i] = i;
  }
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  const std::string before = dump_after(result, "sema");
  EXPECT_TRUE(contains(before, "num_threads=t")) << before;
  EXPECT_TRUE(contains(before, "if=")) << before;

  const std::string after = dump_after(result, "fold");
  // num_threads(t) became the literal 4, the loop bound became 64, and the
  // always-true if clause disappeared entirely.
  EXPECT_TRUE(contains(after, "num_threads=4")) << after;
  EXPECT_TRUE(contains(after, "0 .. 64")) << after;
  EXPECT_FALSE(contains(after, "if=")) << after;
  EXPECT_GE(result.pass_stats.folded_operands, 3);
}

TEST(FoldPassTest, MutableOperandsAreLeftAlone) {
  auto result = compile_at(R"(
pub fn fill(a: []i64, n: i64) void {
  var t: i64 = 2;
  t += 2;
  //#omp parallel for num_threads(t)
  for (0..n) |i| {
    a[i] = i;
  }
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  const std::string after = dump_after(result, "fold");
  // `t` is mutable and `n` is a parameter: neither may be literalized.
  EXPECT_TRUE(contains(after, "num_threads=t")) << after;
  EXPECT_TRUE(contains(after, "0 .. n")) << after;
  EXPECT_EQ(result.pass_stats.static_specialized, 0);
}

// -- static-spec ------------------------------------------------------------

TEST(StaticSpecPassTest, MarksChunklessStaticLoopsWithConstantShape) {
  auto result = compile_at(kTwoRegions, /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  EXPECT_FALSE(contains(dump_after(result, "fold"), "static-spec"));
  const std::string after = dump_after(result, "static-spec");
  EXPECT_TRUE(contains(after, "static-spec")) << after;
  EXPECT_EQ(result.pass_stats.static_specialized, 2);
}

TEST(StaticSpecPassTest, RequiresLiteralTeamSize) {
  // Same loops, no num_threads clause: the team size is a runtime ICV, so
  // specialization must not fire even though the bounds fold to literals.
  auto result = compile_at(R"(
pub fn sum(out: []i64) void {
  const n: i64 = 1024;
  var s: i64 = 0;
  //#omp parallel for reduction(+: s)
  for (0..n) |i| {
    s += i;
  }
  out[0] = s;
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.pass_stats.static_specialized, 0);
  EXPECT_FALSE(contains(dump_after(result, "static-spec"), "static-spec"));
}

TEST(StaticSpecPassTest, RefusesDynamicAndChunkedSchedules) {
  auto dynamic = compile_at(R"(
pub fn sum(out: []i64) void {
  const n: i64 = 1024;
  var s: i64 = 0;
  //#omp parallel for reduction(+: s) num_threads(4) schedule(dynamic)
  for (0..n) |i| {
    s += i;
  }
  out[0] = s;
}
)",
                            /*opt_level=*/1);
  ASSERT_TRUE(dynamic.ok) << dynamic.diagnostics_text();
  EXPECT_EQ(dynamic.pass_stats.static_specialized, 0);

  auto chunked = compile_at(R"(
pub fn sum(out: []i64) void {
  const n: i64 = 1024;
  var s: i64 = 0;
  //#omp parallel for reduction(+: s) num_threads(4) schedule(static, 8)
  for (0..n) |i| {
    s += i;
  }
  out[0] = s;
}
)",
                            /*opt_level=*/1);
  ASSERT_TRUE(chunked.ok) << chunked.diagnostics_text();
  // A chunked static schedule prescribes round-robin chunk ownership the
  // single-block specialization would violate.
  EXPECT_EQ(chunked.pass_stats.static_specialized, 0);
}

// -- fuse -------------------------------------------------------------------

TEST(FusePassTest, MergesAdjacentCompatibleRegions) {
  auto result = compile_at(kTwoRegions, /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.pass_stats.regions_fused, 1);

  const std::string after = dump_after(result, "fuse");
  EXPECT_TRUE(contains(after, "__omp_fused_0")) << after;
  EXPECT_TRUE(contains(after, "(omp-barrier)")) << after;
  // Both original outlined bodies were absorbed and their functions erased.
  EXPECT_FALSE(contains(after, "__omp_sum_two_parallel_0")) << after;
  EXPECT_FALSE(contains(after, "__omp_sum_two_parallel_1")) << after;
}

TEST(FusePassTest, TailBarrierOfFirstRegionIsRelaxed) {
  auto result = compile_at(kTwoRegions, /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  // Region 1's worksharing loop may go nowait inside the fused body: the
  // explicit inter-body barrier subsumes its implicit one, so the fused
  // pair pays one rendezvous, not two.
  EXPECT_TRUE(contains(dump_after(result, "fuse"), "nowait"));
}

TEST(FusePassTest, StatementBetweenRegionsBlocksFusion) {
  auto result = compile_at(R"(
pub fn sum_two(out: []i64) void {
  const n: i64 = 1024;
  var s1: i64 = 0;
  var s2: i64 = 0;
  //#omp parallel for reduction(+: s1) num_threads(4)
  for (0..n) |i| {
    s1 += i;
  }
  out[0] = s1;
  //#omp parallel for reduction(+: s2) num_threads(4)
  for (0..n) |i| {
    s2 += i * 2;
  }
  out[1] = s2;
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.pass_stats.regions_fused, 0);
  EXPECT_FALSE(contains(dump_after(result, "fuse"), "__omp_fused"));
}

TEST(FusePassTest, DifferentTeamSizesBlockFusion) {
  auto result = compile_at(R"(
pub fn sum_two(out: []i64) void {
  const n: i64 = 1024;
  var s1: i64 = 0;
  var s2: i64 = 0;
  //#omp parallel for reduction(+: s1) num_threads(4)
  for (0..n) |i| {
    s1 += i;
  }
  //#omp parallel for reduction(+: s2) num_threads(2)
  for (0..n) |i| {
    s2 += i * 2;
  }
  out[0] = s1;
  out[1] = s2;
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.pass_stats.regions_fused, 0);
}

TEST(FusePassTest, UnfoldableIfClauseBlocksFusion) {
  // `if(k > 0)` can fall back to a serial (team-of-one) execution at
  // runtime; fusing it with an unconditional region would force both
  // bodies into one fork decision.
  auto result = compile_at(R"(
pub fn sum_two(k: i64, n: i64, out: []i64) void {
  var s1: i64 = 0;
  var s2: i64 = 0;
  //#omp parallel for reduction(+: s1) if(k > 0)
  for (0..n) |i| {
    s1 += i;
  }
  //#omp parallel for reduction(+: s2)
  for (0..n) |i| {
    s2 += i * 2;
  }
  out[0] = s1;
  out[1] = s2;
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.pass_stats.regions_fused, 0);
}

TEST(FusePassTest, ReductionResultReadBySecondRegionBlocksFusion) {
  // s1 is a reduction pointer in region 1 and an input of region 2: the
  // capture-mode mismatch is exactly the nowait-unsafe boundary (region 2
  // must observe the combined value, which only the join publishes).
  auto result = compile_at(R"(
pub fn sum_two(n: i64, out: []i64) void {
  var s1: i64 = 0;
  var s2: i64 = 0;
  //#omp parallel for reduction(+: s1)
  for (0..n) |i| {
    s1 += i;
  }
  //#omp parallel for reduction(+: s2)
  for (0..n) |i| {
    s2 += s1 + i;
  }
  out[0] = s1;
  out[1] = s2;
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.pass_stats.regions_fused, 0);
}

TEST(FusePassTest, ValueCaptureWrittenByFirstBodyBlocksFusion) {
  // x is firstprivate in both regions and body 1 writes its private copy.
  // The fused function would hold ONE parameter for x, so region 2's
  // "fresh" copy would observe region 1's writes — must not fuse.
  auto result = compile_at(R"(
pub fn sum_two(n: i64, out: []i64) void {
  var x: i64 = 5;
  var s1: i64 = 0;
  var s2: i64 = 0;
  //#omp parallel for reduction(+: s1) firstprivate(x)
  for (0..n) |i| {
    x += 1;
    s1 += x;
  }
  //#omp parallel for reduction(+: s2) firstprivate(x)
  for (0..n) |i| {
    s2 += x + i;
  }
  out[0] = s1;
  out[1] = s2;
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.pass_stats.regions_fused, 0);
}

// -- dce-hoist --------------------------------------------------------------

TEST(DceHoistPassTest, DropsCapturesMadeDeadByFolding) {
  auto result = compile_at(kTwoRegions, /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  // Fold literalized every use of n inside the outlined bodies, so the
  // fused region still carries a dead [n ...] capture until dce runs.
  EXPECT_TRUE(contains(dump_after(result, "fuse"), "[n "));
  const std::string after = dump_after(result, "dce-hoist");
  EXPECT_FALSE(contains(after, "[n ")) << after;
  EXPECT_GE(result.pass_stats.dead_captures, 1);
}

TEST(DceHoistPassTest, MarksLoopInvariantForksHoistable) {
  auto result = compile_at(R"(
pub fn iterate(a: []i64) void {
  const n: i64 = 64;
  var scale: i64 = 3;
  for (0..10) |t| {
    //#omp parallel for num_threads(2)
    for (0..n) |i| {
      a[i] = a[i] + scale;
    }
    scale += 1;
  }
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  // Every captured address (a, scale) is declared outside the serial loop:
  // the void* argument pack can be built once, before the loop.
  EXPECT_EQ(result.pass_stats.hoisted_forks, 1);
  EXPECT_TRUE(contains(dump_after(result, "dce-hoist"), "hoist@1"));
}

TEST(DceHoistPassTest, LoopLocalCaptureBlocksHoisting) {
  auto result = compile_at(R"(
pub fn iterate(a: []i64) void {
  const n: i64 = 64;
  for (0..10) |t| {
    var local: i64 = t;
    //#omp parallel for num_threads(2)
    for (0..n) |i| {
      a[i] = a[i] + local;
    }
  }
}
)",
                           /*opt_level=*/1);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  // `local` lives in the loop body's scope — its address is reborn every
  // iteration, so the pack must be rebuilt per iteration too.
  EXPECT_EQ(result.pass_stats.hoisted_forks, 0);
  EXPECT_FALSE(contains(dump_after(result, "dce-hoist"), "hoist@"));
}

// -- end-to-end semantics ---------------------------------------------------

// The optimized module (folded + both loops static-specialized + regions
// fused with a relaxed tail barrier + dead capture dropped) must compute
// exactly what the -O0 module does, lastprivate writeback included.
TEST(PassPipelineTest, OptimizedModuleMatchesO0Semantics) {
  const char* source = R"(
pub fn run(out: []i64) void {
  const n: i64 = 100;
  var s1: i64 = 0;
  var s2: i64 = 0;
  var last: i64 = -1;
  //#omp parallel for reduction(+: s1) lastprivate(last) num_threads(4)
  for (0..n) |i| {
    s1 += i;
    last = i * 2;
  }
  //#omp parallel for reduction(+: s2) num_threads(4)
  for (0..n) |i| {
    s2 += i + 1;
  }
  out[0] = s1;
  out[1] = s2;
  out[2] = last;
}
)";

  auto o1 = compile_at(source, /*opt_level=*/1, /*dump_ir=*/{});
  ASSERT_TRUE(o1.ok) << o1.diagnostics_text();
  // Prove the optimized path is what actually runs below.
  EXPECT_EQ(o1.pass_stats.regions_fused, 1);
  EXPECT_EQ(o1.pass_stats.static_specialized, 2);

  auto o0 = compile_at(source, /*opt_level=*/0, /*dump_ir=*/{});
  ASSERT_TRUE(o0.ok) << o0.diagnostics_text();

  auto run = [](CompileResult& compiled) {
    interp::Interp interp(*compiled.module);
    interp::SliceVal out;
    out.data = std::make_shared<std::vector<interp::Value>>(
        3, interp::Value(std::int64_t{0}));
    interp.call_by_name("run", {interp::Value(out)});
    return std::vector<std::int64_t>{(*out.data)[0].as_i64(),
                                     (*out.data)[1].as_i64(),
                                     (*out.data)[2].as_i64()};
  };

  const auto opt = run(o1);
  const auto ref = run(o0);
  EXPECT_EQ(opt, ref);
  EXPECT_EQ(opt[0], 4950);  // sum 0..99
  EXPECT_EQ(opt[1], 5050);  // sum 1..100
  EXPECT_EQ(opt[2], 198);   // lastprivate from i = 99
}

}  // namespace
}  // namespace zomp::core
