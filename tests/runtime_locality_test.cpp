// Locality-aware scheduling (DESIGN.md S1.9): the hierarchical steal-victim
// order derived from a binding plan + the scheduling topology, the per-place
// dispatch shard map, the sharded dynamic/guided cursor protocol (disjoint
// slabs, exactly-once under concurrent slab steals), and the place-aware
// taskloop spray. Synthetic topologies and place tables throughout, so the
// shapes are deterministic on any CI machine — including `taskset -c 0`.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "runtime/runtime.h"

namespace zomp {
namespace {

using rt::BindingPlan;
using rt::MemberBinding;
using rt::Place;
using rt::PlaceTable;
using rt::ShardMap;
using rt::Topology;

/// Snapshot/restore of the process place table (same guard the affinity
/// tests use) so synthetic tables never leak into later tests.
class PlaceTableGuard {
 public:
  PlaceTableGuard() {
    for (rt::i32 i = 0; i < PlaceTable::instance().num_places(); ++i) {
      saved_.push_back(PlaceTable::instance().place(i));
    }
  }
  ~PlaceTableGuard() {
    PlaceTable::instance().set_for_test(saved_);
    rt::GlobalIcv::instance().set_proc_bind_list({});
#if defined(__linux__)
    // Un-pin the main thread: bound regions narrowed its OS mask.
    cpu_set_t set;
    CPU_ZERO(&set);
    for (const rt::ProcInfo& p : Topology::instance().procs()) {
      if (p.os_proc >= 0 && p.os_proc < CPU_SETSIZE) CPU_SET(p.os_proc, &set);
    }
    sched_setaffinity(0, sizeof(set), &set);
#endif
  }

 private:
  std::vector<Place> saved_;
};

/// Removes the synthetic scheduling-topology override on scope exit.
struct SchedulingTopologyGuard {
  ~SchedulingTopologyGuard() { rt::clear_scheduling_topology_for_test(); }
};

std::vector<Place> synthetic_places(int n) {
  std::vector<Place> places;
  for (int i = 0; i < n; ++i) {
    Place p;
    p.procs.push_back(i);
    places.push_back(p);
  }
  return places;
}

/// An active plan putting member i on places[i] (partition fields are not
/// consulted by the locality products).
BindingPlan make_plan(const std::vector<rt::i32>& places) {
  BindingPlan plan;
  plan.active = true;
  plan.sig = 1;
  for (const rt::i32 p : places) {
    MemberBinding mb;
    mb.place = p;
    mb.part_lo = 0;
    mb.part_len = static_cast<rt::i32>(places.size());
    plan.members.push_back(mb);
  }
  return plan;
}

/// A quiescent Team over fake member states: nothing ever runs on it, so
/// set_binding / shard_map / victim_order can be inspected directly.
struct FakeTeam {
  std::vector<rt::ThreadState> states;
  std::unique_ptr<rt::Team> team;

  explicit FakeTeam(int n) : states(static_cast<std::size_t>(n)) {
    std::vector<rt::ThreadState*> ptrs;
    ptrs.reserve(states.size());
    for (auto& s : states) ptrs.push_back(&s);
    team = std::make_unique<rt::Team>(std::move(ptrs),
                                      rt::GlobalIcv::instance().initial(),
                                      /*level=*/0, /*active_level=*/0);
  }
};

// ---------------------------------------------------------------------------
// Victim-order shape (build once per binding; team.cpp build_victim_order)
// ---------------------------------------------------------------------------

TEST(VictimOrderTest, FollowsLocalityTiersOnSyntheticMachine) {
  // 2 sockets x 2 cores x 2 SMT = 8 procs; one single-proc place per proc;
  // one member per place. Expected tiers for member t against victim v:
  // same core (SMT sibling) when v/2 == t/2, same socket when v/4 == t/4,
  // anywhere otherwise — there are no same-place siblings.
  PlaceTableGuard pguard;
  SchedulingTopologyGuard tguard;
  rt::set_scheduling_topology_for_test(Topology::synthetic(2, 2, 2));
  PlaceTable::instance().set_for_test(synthetic_places(8));
  FakeTeam ft(8);
  ft.team->set_binding(make_plan({0, 1, 2, 3, 4, 5, 6, 7}));
  const std::vector<rt::i32>& order = ft.team->tasks().victim_order();
  ASSERT_EQ(order.size(), 8u * 7u) << "flattened n x (n-1) table";
  auto tier = [](int t, int v) {
    if (v / 2 == t / 2) return 1;
    if (v / 4 == t / 4) return 2;
    return 3;
  };
  for (int t = 0; t < 8; ++t) {
    const rt::i32* row = order.data() + static_cast<std::size_t>(t) * 7;
    std::set<rt::i32> seen;
    int prev = 0;
    for (int k = 0; k < 7; ++k) {
      ASSERT_GE(row[k], 0);
      ASSERT_LT(row[k], 8);
      EXPECT_NE(row[k], t) << "a member is never its own victim";
      seen.insert(row[k]);
      const int cur = tier(t, row[k]);
      EXPECT_GE(cur, prev) << "victims sorted near-to-far, member " << t
                           << " position " << k;
      prev = cur;
    }
    EXPECT_EQ(seen.size(), 7u) << "row is a permutation, member " << t;
    EXPECT_EQ(row[0], t ^ 1) << "nearest victim is the SMT sibling";
  }
}

TEST(VictimOrderTest, SamePlaceSiblingsComeFirstAndTiersStagger) {
  // Two members per place across two sockets: the tier-0 sibling leads every
  // row, and the far tier is rotated per member (anti-convoy stagger).
  PlaceTableGuard pguard;
  SchedulingTopologyGuard tguard;
  rt::set_scheduling_topology_for_test(Topology::synthetic(2, 1, 1));
  PlaceTable::instance().set_for_test(synthetic_places(2));
  FakeTeam ft(4);
  ft.team->set_binding(make_plan({0, 0, 1, 1}));
  const std::vector<rt::i32>& order = ft.team->tasks().victim_order();
  ASSERT_EQ(order.size(), 4u * 3u);
  const std::vector<rt::i32> want = {
      1, 2, 3,   // member 0: sibling 1, far tier {2,3} unrotated
      0, 3, 2,   // member 1: sibling 0, far tier rotated by 1
      3, 0, 1,   // member 2: sibling 3, far tier {0,1} unrotated
      2, 1, 0};  // member 3: sibling 2, far tier rotated by 1
  EXPECT_EQ(order, want);
}

TEST(VictimOrderTest, EmptyForSinglePlaceOrInactiveBindings) {
  PlaceTableGuard pguard;
  PlaceTable::instance().set_for_test(synthetic_places(2));
  FakeTeam ft(4);
  ft.team->set_binding(make_plan({0, 0, 0, 0}));
  EXPECT_TRUE(ft.team->tasks().victim_order().empty())
      << "single place -> staggered flat ring, no table";
  EXPECT_EQ(ft.team->shard_map().nshards, 1);
  ft.team->set_binding(BindingPlan{});
  EXPECT_TRUE(ft.team->tasks().victim_order().empty())
      << "inactive binding -> no table";
  EXPECT_EQ(ft.team->shard_map().nshards, 1);
}

// ---------------------------------------------------------------------------
// Shard map (per-place dispatch grouping; team.cpp rebuild_locality)
// ---------------------------------------------------------------------------

TEST(ShardMapTest, GroupsMembersByPlaceInPlaceOrder) {
  PlaceTableGuard pguard;
  PlaceTable::instance().set_for_test(synthetic_places(6));
  FakeTeam ft(4);
  ft.team->set_binding(make_plan({2, 5, 2, 5}));
  const ShardMap& map = ft.team->shard_map();
  ASSERT_EQ(map.nshards, 2);
  EXPECT_EQ(map.member_shard, (std::vector<rt::i32>{0, 1, 0, 1}));
  EXPECT_EQ(map.weight, (std::vector<rt::i32>{2, 2}));
  ASSERT_EQ(map.shard_members.size(), 2u);
  EXPECT_EQ(map.shard_members[0], (std::vector<rt::i32>{0, 2}));
  EXPECT_EQ(map.shard_members[1], (std::vector<rt::i32>{1, 3}));
}

TEST(ShardMapTest, PlacesBeyondTheCapMergeIntoTheLastShard) {
  PlaceTableGuard pguard;
  PlaceTable::instance().set_for_test(synthetic_places(10));
  FakeTeam ft(10);
  ft.team->set_binding(make_plan({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  const ShardMap& map = ft.team->shard_map();
  ASSERT_EQ(map.nshards, rt::kMaxPlaceShards);
  EXPECT_EQ(map.member_shard[9], rt::kMaxPlaceShards - 1);
  EXPECT_EQ(map.weight[static_cast<std::size_t>(rt::kMaxPlaceShards - 1)], 3)
      << "members past the cap merge, never drop";
  rt::i32 total = 0;
  for (const rt::i32 w : map.weight) total += w;
  EXPECT_EQ(total, 10);
}

// ---------------------------------------------------------------------------
// Sharded dispatch cursor (worksharing.{h,cpp}; no Team involved)
// ---------------------------------------------------------------------------

TEST(ShardedDispatchTest, SlabsPartitionTheTripSpaceProportionally) {
  rt::DispatchSlot slot;
  slot.trips = 1000003;  // odd on purpose: boundaries must still partition
  ShardMap map;
  map.nshards = 2;
  map.member_shard = {0, 0, 0, 1};
  map.weight = {3, 1};
  map.shard_members = {{0, 1, 2}, {3}};
  rt::dispatch_init_shards(slot, map, /*sharded=*/true);
  ASSERT_EQ(slot.nshards, 2);
  EXPECT_EQ(slot.shards[0].lo, 0);
  EXPECT_EQ(slot.shards[0].hi, slot.shards[1].lo) << "slabs are contiguous";
  EXPECT_EQ(slot.shards[1].hi, slot.trips) << "slabs cover the trip space";
  // Proportional to member weight 3:1, up to rounding.
  const rt::i64 want0 = slot.trips * 3 / 4;
  EXPECT_NEAR(static_cast<double>(slot.shards[0].hi),
              static_cast<double>(want0), 4.0);
  EXPECT_EQ(slot.shards[0].next.load(), slot.shards[0].lo);
  EXPECT_EQ(slot.shards[1].next.load(), slot.shards[1].lo);

  // sharded=false (static kinds, unbound teams) collapses to one slab.
  rt::dispatch_init_shards(slot, map, /*sharded=*/false);
  ASSERT_EQ(slot.nshards, 1);
  EXPECT_EQ(slot.shards[0].lo, 0);
  EXPECT_EQ(slot.shards[0].hi, slot.trips);
}

/// Drives dispatch_next_chunk from `nthreads` raw std::threads against a
/// hand-built slot and asserts every trip is claimed exactly once and
/// exactly one chunk reports `last`.
void run_slot_coverage(rt::ScheduleKind kind, rt::i64 n, rt::i64 chunk,
                       const std::vector<rt::i32>& member_shard) {
  const auto nthreads = static_cast<rt::i32>(member_shard.size());
  rt::DispatchSlot slot;
  slot.kind = kind;
  slot.lo = 0;
  slot.hi = n;
  slot.step = 1;
  slot.chunk = chunk;
  slot.trips = n;
  slot.nthreads = nthreads;
  ShardMap map;
  map.nshards = 2;
  map.member_shard = member_shard;
  map.weight = {1, 1};  // equal slabs regardless of who sits where
  map.shard_members = {{}, {}};
  rt::dispatch_init_shards(slot, map, /*sharded=*/true);
  ASSERT_EQ(slot.nshards, 2);

  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  std::atomic<int> lasts{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (rt::i32 t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      rt::MemberDispatch md;
      md.shard = member_shard[static_cast<std::size_t>(t)];
      rt::i64 lo = 0, hi = 0;
      bool last = false;
      while (rt::dispatch_next_chunk(slot, md, t, &lo, &hi, &last)) {
        for (rt::i64 i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(
              1, std::memory_order_relaxed);
        }
        if (last) lasts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (rt::i64 i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
        << "trip " << i << " kind=" << static_cast<int>(kind)
        << " chunk=" << chunk;
  }
  EXPECT_EQ(lasts.load(), 1) << "exactly one lastprivate owner";
}

TEST(ShardedDispatchTest, EveryTripExactlyOnceAcrossTwoShards) {
  for (const rt::i64 chunk : {rt::i64{1}, rt::i64{7}}) {
    run_slot_coverage(rt::ScheduleKind::kDynamic, 10007, chunk, {0, 0, 1, 1});
    run_slot_coverage(rt::ScheduleKind::kGuided, 10007, chunk, {0, 0, 1, 1});
  }
}

TEST(ShardedDispatchTest, RemoteSlabIsFullyStolenWhenItsMembersNeverShow) {
  // Every claimer sits on shard 0: shard 1's slab is reachable only through
  // steal_slab, and must still be served exactly once.
  run_slot_coverage(rt::ScheduleKind::kDynamic, 4099, 3, {0, 0});
  run_slot_coverage(rt::ScheduleKind::kGuided, 4099, 1, {0, 0});
  // And a lone claimer draining both slabs serially.
  run_slot_coverage(rt::ScheduleKind::kDynamic, 513, 5, {0});
}

// ---------------------------------------------------------------------------
// End-to-end: bound regions route through the sharded cursors
// ---------------------------------------------------------------------------

TEST(LocalityDispatchTest, BoundSpreadCoverageSweep) {
  // Exactly-once under a real two-place spread binding, for every schedule
  // kind x chunk x team size x trip count. On machines where place {1} is
  // not applicable the binding degrades to logical-only placement, which
  // still drives the shard map — the invariant must hold either way.
  PlaceTableGuard pguard;
  PlaceTable::instance().set_for_test(synthetic_places(2));
  for (const rt::ScheduleKind kind :
       {rt::ScheduleKind::kStatic, rt::ScheduleKind::kDynamic,
        rt::ScheduleKind::kGuided}) {
    for (const rt::i64 chunk : {rt::i64{0}, rt::i64{3}}) {
      if (kind == rt::ScheduleKind::kDynamic && chunk == 0) continue;
      for (const int threads : {1, 2, 4, 8}) {
        for (const rt::i64 n : {rt::i64{0}, rt::i64{1}, rt::i64{63},
                                rt::i64{1024}}) {
          std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
          for (auto& h : hits) h.store(0, std::memory_order_relaxed);
          ParallelOptions opts;
          opts.num_threads = threads;
          opts.proc_bind = rt::BindKind::kSpread;
          parallel(
              [&] {
                for_each(
                    0, n,
                    [&](rt::i64 i) {
                      hits[static_cast<std::size_t>(i)].fetch_add(
                          1, std::memory_order_relaxed);
                    },
                    ForOptions{{kind, chunk}, false});
              },
              opts);
          for (rt::i64 i = 0; i < n; ++i) {
            ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
                << "iteration " << i << " kind=" << static_cast<int>(kind)
                << " chunk=" << chunk << " threads=" << threads
                << " n=" << n;
          }
        }
      }
    }
  }
}

TEST(LocalityTaskloopTest, SprayCoversEveryIterationAcrossPlaces) {
  // A 4-member spread team over two places: taskloop chunks are sprayed
  // round-robin across the place shards via the remote mailboxes, every
  // iteration still runs exactly once, and the pool telemetry shows the
  // remote chunks really travelled through mailboxes.
  PlaceTableGuard pguard;
  PlaceTable::instance().set_for_test(synthetic_places(2));
  constexpr rt::i64 kN = 256;
  constexpr rt::i64 kChunks = 16;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(kN));
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  rt::Team* team = nullptr;
  ParallelOptions opts;
  opts.num_threads = 4;
  opts.proc_bind = rt::BindKind::kSpread;
  parallel(
      [&] {
        if (rt::current_thread().tid == 0) team = rt::current_thread().team;
        single([&] {
          taskloop(
              rt::i64{0}, kN,
              [&](rt::i64 i) {
                hits[static_cast<std::size_t>(i)].fetch_add(
                    1, std::memory_order_relaxed);
              },
              TaskloopOptions{0, kChunks});
        });
      },
      opts);
  for (rt::i64 i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  }
  // Post-join quiescent read (the team survives in the hot cache): with two
  // shards, 3 of every 4 chunks target another member's mailbox.
  ASSERT_NE(team, nullptr);
  if (team->size() == 4 && team->shard_map().nshards == 2) {
    const rt::StealStats stats = team->tasks().stats_total();
    EXPECT_GE(stats.mailbox_pulls, static_cast<rt::u64>(kChunks * 3 / 4))
        << "sprayed chunks must travel through the mailboxes";
  }
}

}  // namespace
}  // namespace zomp
