// Fault-injection & graceful-degradation tests (DESIGN.md S10).
//
// The three injection sites each have a degradation contract:
//   spawn    — a failed worker spawn shrinks the team; every team-sized
//              structure (barrier, reduction tree, dispatch shards) follows
//              the short size, so the region still completes correctly.
//   alloc    — a failed task allocation runs the task undeferred inline,
//              preserving task semantics at the cost of parallelism.
//   affinity — a failed sched_setaffinity leaves the thread logically bound
//              (place_num assigned) but OS-unpinned.
// The NPB sweep at the bottom proves the global property: under ANY
// injection probability the kernels still produce bit-exact results —
// degraded means slower, never wrong.
//
// zomp_fatal (the ZOMP_CHECK reporter) is covered by death tests: the abort
// must carry the message and the thread/team/place context line.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "mandel_mz.h"
#include "npb/mandel.h"
#include "runtime/api.h"
#include "runtime/common.h"
#include "runtime/fault.h"
#include "runtime/hl.h"
#include "taskgraph_mz.h"

namespace zomp::rt {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault_reset(); }

  static void configure(FaultSite site, double p) {
    double probs[kNumFaultSites] = {0, 0, 0};
    probs[static_cast<i32>(site)] = p;
    fault_configure(probs);
  }
};

// -- Spec parsing ------------------------------------------------------------

struct SpecCase {
  const char* text;
  bool ok;
  double spawn, alloc, affinity;
};

class FaultSpecTest : public ::testing::TestWithParam<SpecCase> {};

TEST_P(FaultSpecTest, Parses) {
  const SpecCase& c = GetParam();
  double probs[kNumFaultSites] = {-1, -1, -1};
  ASSERT_EQ(parse_fault_spec(c.text, probs), c.ok) << c.text;
  if (c.ok) {
    EXPECT_DOUBLE_EQ(probs[0], c.spawn) << c.text;
    EXPECT_DOUBLE_EQ(probs[1], c.alloc) << c.text;
    EXPECT_DOUBLE_EQ(probs[2], c.affinity) << c.text;
  } else {
    // Malformed specs must leave the output untouched (caller keeps its
    // defaults — the unified malformed-env policy).
    EXPECT_DOUBLE_EQ(probs[0], -1) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table, FaultSpecTest,
    ::testing::Values(
        SpecCase{"spawn:1", true, 1, 0, 0},
        SpecCase{"alloc:0.5", true, 0, 0.5, 0},
        SpecCase{"affinity:0.25,spawn:0.125", true, 0.125, 0, 0.25},
        SpecCase{"spawn:0,alloc:0,affinity:0", true, 0, 0, 0},
        SpecCase{"spawn:1,alloc:1,affinity:1", true, 1, 1, 1},
        SpecCase{"", false, 0, 0, 0},
        SpecCase{"spawn", false, 0, 0, 0},
        SpecCase{"spawn:", false, 0, 0, 0},
        SpecCase{"spawn:2", false, 0, 0, 0},
        SpecCase{"spawn:-0.5", false, 0, 0, 0},
        SpecCase{"spawn:0.5x", false, 0, 0, 0},
        SpecCase{"teleport:0.5", false, 0, 0, 0},
        SpecCase{"spawn=0.5", false, 0, 0, 0}));

TEST_F(FaultTest, ScheduleIsDeterministic) {
  configure(FaultSite::kAlloc, 1.0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fault_should_fail(FaultSite::kAlloc)) << i;
    EXPECT_FALSE(fault_should_fail(FaultSite::kSpawn)) << i;
  }
  EXPECT_EQ(fault_injected_count(FaultSite::kAlloc), 8);

  // p=0.5 -> period 2 -> calls 1, 3, 5, ... fail (0-based).
  configure(FaultSite::kAlloc, 0.5);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fault_should_fail(FaultSite::kAlloc), i % 2 == 1) << i;
  }

  fault_reset();
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(fault_should_fail(FaultSite::kAlloc)) << i;
  }
  EXPECT_EQ(fault_injected_count(FaultSite::kAlloc), 0);
}

// -- Degradation: spawn ------------------------------------------------------

TEST_F(FaultTest, SpawnFaultDeliversShrunkenButConsistentTeam) {
  configure(FaultSite::kSpawn, 1.0);
  std::atomic<int> members{0};
  std::atomic<int> team_size{0};
  std::atomic<int> at_barrier{0};
  zomp::parallel(
      [&] {
        ThreadState& ts = current_thread();
        members.fetch_add(1);
        team_size.store(ts.team->size());
        at_barrier.fetch_add(1);
        // The shrunken team's barrier is sized to the delivered membership:
        // if any sizing structure still assumed 64 members this would hang.
        (void)zomp::barrier();
        EXPECT_EQ(at_barrier.load(), team_size.load());
      },
      zomp::ParallelOptions{64});
  EXPECT_GT(fault_injected_count(FaultSite::kSpawn), 0);
  EXPECT_LT(team_size.load(), 64);
  EXPECT_EQ(members.load(), team_size.load());

  // Worksharing + reduction across the short team stays exact.
  constexpr i64 n = 4096;
  const i64 want = n * (n - 1) / 2;
  const i64 got = zomp::parallel_reduce<i64>(
      0, n, i64{0}, std::plus<>{}, [](i64 i) { return i; }, zomp::ForOptions{},
      zomp::ParallelOptions{64});
  EXPECT_EQ(got, want);
}

// -- Degradation: alloc ------------------------------------------------------

TEST_F(FaultTest, AllocFaultRunsTasksInlineWithFullSemantics) {
  configure(FaultSite::kAlloc, 1.0);
  constexpr int kTasks = 50;
  std::atomic<int> ran{0};
  zomp::parallel(
      [&] {
        zomp::single([&] {
          for (int t = 0; t < kTasks; ++t) {
            zomp::task([&] { ran.fetch_add(1); });
          }
          zomp::taskwait();
        });
      },
      zomp::ParallelOptions{2});
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_GT(fault_injected_count(FaultSite::kAlloc), 0);

  // taskloop under total allocation failure still covers every index once.
  constexpr i64 n = 200;
  std::vector<std::atomic<int>> hits(n);
  zomp::parallel(
      [&] {
        zomp::single([&] {
          zomp::taskloop(0, n, [&](i64 i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
          });
        });
      },
      zomp::ParallelOptions{2});
  for (i64 i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

// -- Degradation: affinity ---------------------------------------------------

TEST_F(FaultTest, AffinityFaultDegradesToLogicalBinding) {
  configure(FaultSite::kAffinity, 1.0);
  // Binding requests succeed logically even when every OS pin fails; the
  // region must complete with correct results and no crash.
  std::atomic<int> members{0};
  zomp::ParallelOptions opts{4};
  opts.proc_bind = BindKind::kClose;
  zomp::parallel([&] { members.fetch_add(1); }, opts);
  EXPECT_GE(members.load(), 1);
}

// -- NPB sweep: site x probability, results stay bit-exact -------------------

struct SweepCase {
  FaultSite site;
  double p;
};

class FaultSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  void TearDown() override { fault_reset(); }
};

TEST_P(FaultSweepTest, MandelAndTaskgraphStayExact) {
  const SweepCase& c = GetParam();
  double probs[kNumFaultSites] = {0, 0, 0};
  probs[static_cast<i32>(c.site)] = c.p;

  constexpr std::int64_t w = 32, h = 32, iters = 100;
  const npb::MandelResult oracle = npb::mandel_serial(npb::MandelParams{w, h, iters});

  zomp::set_num_threads(4);
  fault_configure(probs);
  // mandel: parallel for (spawn/affinity faults bite at region entry).
  std::vector<std::int64_t> res(2, 0);
  mzgen_mandel_mz::mandel_run(w, h, iters,
                              mz::Slice<std::int64_t>{res.data(), 2});
  EXPECT_EQ(res[0], oracle.inside) << "site " << static_cast<int>(c.site)
                                   << " p " << c.p;
  EXPECT_EQ(static_cast<std::uint64_t>(res[1]), oracle.iter_checksum);

  // taskgraph taskloop: tasking constructs (alloc faults bite per task).
  fault_configure(probs);
  constexpr std::int64_t n = 53, g = 3, nt = 7;
  std::int64_t want = 0;
  for (std::int64_t i = 0; i < n; ++i) want += (i * i - 3 * i + 7) * 2 + 1;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  const std::int64_t got = mzgen_taskgraph_mz::taskloop_run(
      n, g, nt, mz::Slice<std::int64_t>{out.data(), n});
  EXPECT_EQ(got, want) << "site " << static_cast<int>(c.site) << " p " << c.p;
}

INSTANTIATE_TEST_SUITE_P(
    SiteByProbability, FaultSweepTest,
    ::testing::Values(SweepCase{FaultSite::kSpawn, 0.0},
                      SweepCase{FaultSite::kSpawn, 0.5},
                      SweepCase{FaultSite::kSpawn, 1.0},
                      SweepCase{FaultSite::kAlloc, 0.0},
                      SweepCase{FaultSite::kAlloc, 0.5},
                      SweepCase{FaultSite::kAlloc, 1.0},
                      SweepCase{FaultSite::kAffinity, 0.0},
                      SweepCase{FaultSite::kAffinity, 0.5},
                      SweepCase{FaultSite::kAffinity, 1.0}));

// -- zomp_fatal death tests --------------------------------------------------

class FaultDeathTest : public FaultTest {
 protected:
  void SetUp() override {
    // Pool workers exist by now; fork-style death tests would run in a
    // threaded parent. threadsafe re-executes the binary instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(FaultDeathTest, CheckFailureAbortsWithMessage) {
  EXPECT_DEATH(ZOMP_CHECK(1 == 2, "invariant broken in test"),
               "zomp: fatal: invariant broken in test");
}

TEST_F(FaultDeathTest, FatalReportsThreadContext) {
  // The reporter prints a context line through the OMP_AFFINITY_FORMAT
  // expander: level/thread/place identify which member died.
  EXPECT_DEATH(fatal("boom", "fault_test.cpp", 42),
               "zomp: fatal: context: level [0-9]+ thread [0-9]+/[0-9]+");
}

TEST_F(FaultDeathTest, CheckCarriesFileAndLine) {
  EXPECT_DEATH(ZOMP_CHECK(false, "positioned failure"),
               "runtime_fault_test\\.cpp");
}

}  // namespace
}  // namespace zomp::rt
