// Integration tests over the *transpiled* NPB kernels: the .mz sources went
// through the full mzc pipeline at build time (lexer -> directive engine ->
// outliner -> codegen) and the resulting native code must agree with the
// hand-written reference implementations. This is the end-to-end proof that
// the generated runtime calls are semantically right — the same role the
// NPB verification plays in the paper's evaluation.
#include <gtest/gtest.h>

#include <vector>

#include "cg_mz.h"
#include "cg_mz_safe.h"
#include "ep_mz.h"
#include "is_mz.h"
#include "mandel_mz.h"
#include "mandel_mz_safe.h"
#include "npb/cg.h"
#include "npb/ep.h"
#include "npb/is.h"
#include "npb/mandel.h"
#include "runtime/api.h"

namespace {

template <typename T>
mz::Slice<T> slice_of(std::vector<T>& v) {
  return mz::Slice<T>{v.data(), static_cast<std::int64_t>(v.size())};
}

TEST(GenEpTest, TranspiledMatchesSerialReference) {
  const zomp::npb::EpResult expect = zomp::npb::ep_serial(18);
  std::vector<double> q(10, 0.0), res(3, 0.0);
  zomp::set_num_threads(2);
  mzgen_ep_mz::ep_run(18, slice_of(q), slice_of(res));
  EXPECT_NEAR(res[0], expect.sx, 1e-7);
  EXPECT_NEAR(res[1], expect.sy, 1e-7);
  EXPECT_EQ(static_cast<std::int64_t>(res[2]), expect.pairs_in_disc);
  for (int b = 0; b < 10; ++b) {
    EXPECT_EQ(static_cast<std::int64_t>(q[static_cast<std::size_t>(b)]),
              expect.q[static_cast<std::size_t>(b)])
        << "annulus " << b;
  }
}

TEST(GenCgTest, TranspiledMatchesSerialReference) {
  const zomp::npb::CgClass cls = zomp::npb::cg_class('m');
  zomp::npb::SparseMatrix a = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  const zomp::npb::CgResult expect = zomp::npb::cg_serial(a, cls.niter, cls.shift);

  std::vector<double> x(static_cast<std::size_t>(a.n)), z(x), r(x), p(x), q(x);
  std::vector<double> rnorm(1, 0.0);
  zomp::set_num_threads(2);
  const double zeta = mzgen_cg_mz::cg_run(
      slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values), slice_of(x),
      slice_of(z), slice_of(r), slice_of(p), slice_of(q), cls.niter, cls.shift,
      slice_of(rnorm));
  EXPECT_NEAR(zeta, expect.zeta, 1e-10);
  EXPECT_LT(rnorm[0], 1e-8);
}

TEST(GenCgTest, SafeVariantAgrees) {
  const zomp::npb::CgClass cls = zomp::npb::cg_class('m');
  zomp::npb::SparseMatrix a = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  std::vector<double> x(static_cast<std::size_t>(a.n)), z(x), r(x), p(x), q(x);
  std::vector<double> rnorm(1, 0.0);
  zomp::set_num_threads(2);
  const double fast = mzgen_cg_mz::cg_run(
      slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values), slice_of(x),
      slice_of(z), slice_of(r), slice_of(p), slice_of(q), cls.niter, cls.shift,
      slice_of(rnorm));
  const double safe = mzgen_cg_mz_safe::cg_run(
      slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values), slice_of(x),
      slice_of(z), slice_of(r), slice_of(p), slice_of(q), cls.niter, cls.shift,
      slice_of(rnorm));
  EXPECT_DOUBLE_EQ(fast, safe);
}

TEST(GenIsTest, TranspiledMatchesModularChecksum) {
  const zomp::npb::IsClass cls = zomp::npb::is_class('m');
  const auto keys0 = zomp::npb::is_make_keys(cls.total_keys, cls.max_key);
  const std::int64_t expect =
      zomp::npb::is_rank_checksum_mod(keys0, cls.max_key, cls.iterations);

  for (const int threads : {1, 2, 4}) {
    std::vector<std::int64_t> keys = keys0;
    std::vector<std::int64_t> count(static_cast<std::size_t>(cls.max_key));
    std::vector<std::int64_t> hist(static_cast<std::size_t>(cls.max_key) *
                                   static_cast<std::size_t>(threads));
    zomp::set_num_threads(threads);
    const std::int64_t got = mzgen_is_mz::is_run(
        slice_of(keys), cls.max_key, cls.iterations, slice_of(count),
        slice_of(hist));
    EXPECT_EQ(got, expect) << threads << " threads";
  }
}

TEST(GenMandelTest, TranspiledMatchesSerialReference) {
  const zomp::npb::MandelParams params{96, 96, 400};
  const zomp::npb::MandelResult expect = zomp::npb::mandel_serial(params);
  std::vector<std::int64_t> res(2, 0);
  zomp::set_num_threads(2);
  mzgen_mandel_mz::mandel_run(params.width, params.height, params.max_iter,
                              slice_of(res));
  EXPECT_EQ(res[0], expect.inside);
  EXPECT_EQ(static_cast<std::uint64_t>(res[1]), expect.iter_checksum);
}

TEST(GenMandelTest, SafeVariantAgrees) {
  std::vector<std::int64_t> fast(2, 0), safe(2, 0);
  zomp::set_num_threads(2);
  mzgen_mandel_mz::mandel_run(64, 64, 300, slice_of(fast));
  mzgen_mandel_mz_safe::mandel_run(64, 64, 300, slice_of(safe));
  EXPECT_EQ(fast, safe);
}

TEST(GenKernelsTest, ThreadCountDoesNotChangeResults) {
  // The transpiled Mandelbrot is integer-exact, so any team size must agree.
  std::vector<std::int64_t> base(2, 0);
  zomp::set_num_threads(1);
  mzgen_mandel_mz::mandel_run(80, 80, 300, slice_of(base));
  for (const int threads : {2, 3, 4}) {
    std::vector<std::int64_t> res(2, 0);
    zomp::set_num_threads(threads);
    mzgen_mandel_mz::mandel_run(80, 80, 300, slice_of(res));
    EXPECT_EQ(res, base) << threads;
  }
}

}  // namespace
