// Stress tests for the work-stealing scheduler substrate (PR 1 tentpole):
// task storms across the steal path, nested parallelism inside tasks,
// taskwait/taskgroup ordering under contention, deque-overflow inline
// execution, and a randomized worksharing sweep that checks the
// exactly-once invariant for every schedule kind. Designed to run under
// ThreadSanitizer (CI's Debug+TSan job); keep the iteration counts modest.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "runtime/runtime.h"

namespace zomp {
namespace {

TEST(SchedStressTest, SingleProducerStormIsFullyStolen) {
  // All tasks are spawned by member 0, which then refuses to execute any of
  // them: every completion must come from another member's steal. This pins
  // the thief side of the deque (CAS on top) under real contention.
  constexpr int kTasks = 512;
  constexpr int kThreads = 4;
  std::atomic<int> done{0};
  std::atomic<int> stolen{0};
  parallel(
      [&] {
        if (thread_num() == 0) {
          for (int i = 0; i < kTasks; ++i) {
            task([&] {
              if (thread_num() != 0) stolen.fetch_add(1, std::memory_order_relaxed);
              done.fetch_add(1, std::memory_order_relaxed);
            });
          }
          // Wait for the thieves without helping (yield, don't run tasks):
          // the members parked in the region-end barrier drain the pool.
          while (done.load(std::memory_order_acquire) < kTasks) {
            std::this_thread::yield();
          }
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(done.load(), kTasks);
  // Member 0 never ran a task body after spawning, so every task that ran on
  // a non-zero tid was stolen; the producer's own queue drained via steals.
  EXPECT_EQ(stolen.load(), kTasks) << "steal path must serve the whole storm";
}

TEST(SchedStressTest, AllMembersStormWithInterleavedConsumption) {
  // Every member produces and consumes concurrently (taskwait interleaved),
  // mixing owner pop and thief steal on every deque at once.
  constexpr int kPerMember = 300;
  constexpr int kThreads = 4;
  std::atomic<long> sum{0};
  long expect = 0;
  for (int i = 0; i < kPerMember; ++i) expect += i;
  parallel(
      [&] {
        for (int i = 0; i < kPerMember; ++i) {
          task([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
          if (i % 64 == 63) taskwait();
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(sum.load(), expect * kThreads);
}

TEST(SchedStressTest, DequeOverflowExecutesInline) {
  // More tasks than the bounded deque holds: the overflow must execute
  // inline at the creation point, never hang and never lose a task.
  const int kTasks = static_cast<int>(rt::WorkStealingDeque::kCapacity) + 500;
  std::atomic<int> done{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < kTasks; ++i) {
            task([&] { done.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      },
      ParallelOptions{2, true});
  EXPECT_EQ(done.load(), kTasks);
}

TEST(SchedStressTest, NestedParallelInsideTasks) {
  // Tasks that fork their own (active) nested teams: ThreadState save/restore
  // and per-team task pools must not bleed into each other.
  set_max_active_levels(2);
  constexpr int kTasks = 16;
  constexpr int kInner = 2;
  std::atomic<int> inner_runs{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < kTasks; ++i) {
            task([&] {
              parallel([&] { inner_runs.fetch_add(1, std::memory_order_relaxed); },
                       ParallelOptions{kInner, true});
            });
          }
        });
      },
      ParallelOptions{2, true});
  set_max_active_levels(1);
  // Every nested region contributes >= 1 (its master) and <= kInner members.
  EXPECT_GE(inner_runs.load(), kTasks);
  EXPECT_LE(inner_runs.load(), kTasks * kInner);
}

TEST(SchedStressTest, TaskwaitOrdersChildrenUnderContention) {
  // After taskwait, every child spawned before it must have completed, even
  // while sibling members flood the deques with their own tasks.
  constexpr int kRounds = 20;
  constexpr int kChildren = 24;
  std::atomic<int> violations{0};
  parallel(
      [&] {
        for (int r = 0; r < kRounds; ++r) {
          std::atomic<int> mine{0};
          for (int c = 0; c < kChildren; ++c) {
            task([&mine] { mine.fetch_add(1, std::memory_order_relaxed); });
          }
          taskwait();
          if (mine.load(std::memory_order_acquire) != kChildren) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      ParallelOptions{4, true});
  EXPECT_EQ(violations.load(), 0);
}

TEST(SchedStressTest, TaskgroupWaitsForDeepDescendants) {
  // taskgroup must hold for grandchildren spawned from stolen children while
  // other members contend for the same deques.
  constexpr int kOuter = 12;
  std::atomic<int> leaves{0};
  std::atomic<int> bad_exits{0};
  parallel(
      [&] {
        single([&] {
          taskgroup([&] {
            for (int i = 0; i < kOuter; ++i) {
              task([&] {
                task([&] {
                  task([&] { leaves.fetch_add(1, std::memory_order_relaxed); });
                });
              });
            }
          });
          if (leaves.load(std::memory_order_acquire) != kOuter) {
            bad_exits.fetch_add(1);
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(bad_exits.load(), 0);
  EXPECT_EQ(leaves.load(), kOuter);
}

TEST(SchedStressTest, PassiveWaitPolicyStillDrainsStorms) {
  // The passive policy yields instead of spinning; the storm must still
  // complete and the policy round-trip must hold.
  const rt::WaitPolicy saved = get_wait_policy();
  set_wait_policy(rt::WaitPolicy::kPassive);
  EXPECT_EQ(get_wait_policy(), rt::WaitPolicy::kPassive);
  std::atomic<int> done{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < 256; ++i) {
            task([&] { done.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      },
      ParallelOptions{4, true});
  set_wait_policy(saved);
  EXPECT_EQ(done.load(), 256);
}

// -- Hot-team doorbell stress (PR 3 tentpole; pool.h S1.6) -------------------

TEST(SchedStressTest, DoorbellParkUnparkStress) {
  // Exercise every doorbell wake state under TSan: rung while spinning
  // (back-to-back forks), rung while condvar-parked (sleeps between forks
  // outlast any grace), and rung across wait-policy flips. The alternating
  // sizes force hot-team dismiss/rebuild churn through the lock-free idle
  // stack at the same time.
  const rt::WaitPolicy saved = get_wait_policy();
  for (int round = 0; round < 60; ++round) {
    if (round % 20 == 10) set_wait_policy(rt::WaitPolicy::kPassive);
    if (round % 20 == 0) set_wait_policy(rt::WaitPolicy::kActive);
    const int want = 2 + (round % 3);  // 2, 3, 4, 2, ...
    std::atomic<int> n{0};
    parallel([&] { n.fetch_add(1, std::memory_order_relaxed); },
             ParallelOptions{want, true});
    ASSERT_EQ(n.load(), want) << "round " << round;
    if (round % 10 == 9) {
      // Outlast the doorbell grace so workers are condvar-parked when the
      // next region rings them.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  set_wait_policy(saved);
}

TEST(SchedStressTest, HotTeamRapidFireWithWorkshareAndReduce) {
  // Tight region cadence on a recycled team: every region runs a nowait
  // dynamic loop and one allreduce, so the dispatch ring, the reduction
  // tree's monotonic sequence gates and the doorbell handoff all churn
  // together across 200 reuses.
  constexpr std::int64_t n = 129;
  constexpr std::int64_t want_sum = n * (n - 1) / 2;
  std::atomic<int> bad{0};
  for (int round = 0; round < 200; ++round) {
    parallel(
        [&] {
          std::int64_t local = 0;
          for_each(
              0, n, [&](std::int64_t i) { local += i; },
              ForOptions{{rt::ScheduleKind::kDynamic, 2}, /*nowait=*/true});
          if (allreduce(local, std::plus<>{}) != want_sum) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        },
        ParallelOptions{4, true});
    ASSERT_EQ(bad.load(), 0) << "round " << round;
  }
}

TEST(SchedStressTest, ConcurrentMastersEachKeepAHotTeam) {
  // Several user threads fork back-to-back regions concurrently: each
  // caches its own hot team, so the idle stack sees concurrent pop/push
  // from dismissals while doorbells ring on disjoint worker sets.
  constexpr int kMasters = 3;
  constexpr int kRounds = 40;
  std::atomic<int> bad{0};
  std::vector<std::thread> masters;
  masters.reserve(kMasters);
  for (int m = 0; m < kMasters; ++m) {
    masters.emplace_back([&, m] {
      for (int r = 0; r < kRounds; ++r) {
        const int want = 2 + ((m + r) % 2);
        std::atomic<int> n{0};
        parallel([&] { n.fetch_add(1, std::memory_order_relaxed); },
                 ParallelOptions{want, true});
        // Pool contention may shrink a team; it must never over-deliver
        // or lose the master.
        if (n.load() < 1 || n.load() > want) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : masters) t.join();
  EXPECT_EQ(bad.load(), 0);
}

struct RandomLoopCase {
  unsigned seed;
};

class RandomizedDispatchStress : public ::testing::TestWithParam<RandomLoopCase> {};

TEST_P(RandomizedDispatchStress, EveryIterationExactlyOnceAcrossSchedules) {
  // Randomized (schedule, chunk, threads, trip count) sweep over the batched
  // shared-cursor dispatch: each iteration of each loop must run exactly
  // once, under every schedule kind, including chunk sizes around the batch
  // boundaries.
  std::mt19937 rng(GetParam().seed);
  for (int round = 0; round < 12; ++round) {
    const rt::ScheduleKind kind = static_cast<rt::ScheduleKind>(
        std::uniform_int_distribution<int>(0, 3)(rng));  // static..auto
    const rt::i64 chunk = std::uniform_int_distribution<rt::i64>(
        kind == rt::ScheduleKind::kDynamic ? 1 : 0, 9)(rng);
    const int threads = std::uniform_int_distribution<int>(1, 6)(rng);
    const rt::i64 n = std::uniform_int_distribution<rt::i64>(0, 3000)(rng);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    parallel(
        [&] {
          for_each(
              0, n,
              [&](rt::i64 i) {
                hits[static_cast<std::size_t>(i)].fetch_add(
                    1, std::memory_order_relaxed);
              },
              ForOptions{{kind, chunk}, false});
        },
        ParallelOptions{threads, true});
    for (rt::i64 i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "iteration " << i << " kind=" << static_cast<int>(kind)
          << " chunk=" << chunk << " threads=" << threads << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedDispatchStress,
                         ::testing::Values(RandomLoopCase{11u},
                                           RandomLoopCase{23u},
                                           RandomLoopCase{42u}));

TEST(SchedStressTest, DynamicGuidedFullCoverageUnderNowaitPressure) {
  // Back-to-back nowait dynamic/guided loops (ring reuse) while tasks are in
  // flight: the dispatch ring and the task deques share members but no state.
  constexpr rt::i64 n = 400;
  constexpr int kLoops = 12;
  std::vector<std::atomic<int>> hits(n * kLoops);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  std::atomic<int> tasks_done{0};
  parallel(
      [&] {
        for (int l = 0; l < kLoops; ++l) {
          task([&] { tasks_done.fetch_add(1, std::memory_order_relaxed); });
          const rt::ScheduleKind kind = (l % 2 == 0)
                                            ? rt::ScheduleKind::kDynamic
                                            : rt::ScheduleKind::kGuided;
          for_each(
              0, n,
              [&](rt::i64 i) {
                hits[static_cast<std::size_t>(l * n + i)].fetch_add(
                    1, std::memory_order_relaxed);
              },
              ForOptions{{kind, 1}, /*nowait=*/true});
        }
        barrier();
      },
      ParallelOptions{4, true});
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
  EXPECT_EQ(tasks_done.load(), 4 * kLoops);
}

// ---------------------------------------------------------------------------
// Reduction subsystem stress (runtime/reduce.h, the PR's tree-combine path).
// All of these must stay TSan-clean: the tree's token protocol, the slot
// reuse gate and the broadcast double-buffer are exactly the state a data
// race would corrupt.
// ---------------------------------------------------------------------------

TEST(SchedStressTest, BackToBackAllreducesWithoutBarriers) {
  // Consecutive rendezvous with no intervening team barrier: construct k+1's
  // deposits chase construct k's combine through the done_seq gate, and the
  // broadcast buffers alternate by parity. Any reuse race shows up as a
  // wrong sum (or a TSan report).
  constexpr int kThreads = 8;
  constexpr int kRounds = 300;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        const long tid = thread_num();
        for (long r = 0; r < kRounds; ++r) {
          const long all = allreduce(tid + 1 + r, std::plus<>{});
          const long want =
              kThreads * (kThreads + 1) / 2 + kThreads * r;
          if (all != want) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, ReduceEachUnderDynamicScheduleStress) {
  // reduce_each = nowait dynamic loop + one tree rendezvous per round; the
  // dispatch ring and the reduction slots recycle together.
  constexpr int kThreads = 8;
  constexpr rt::i64 n = 5000;
  constexpr rt::i64 want = n * (n - 1) / 2;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        for (int round = 0; round < 25; ++round) {
          const rt::i64 s = reduce_each(
              0, n, rt::i64{0}, std::plus<>{},
              [](rt::i64 i) { return i; },
              ForOptions{{rt::ScheduleKind::kDynamic, 7}, false});
          if (s != want) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, OversizedReductionTakesFallbackLockPath) {
  // A payload wider than a slot's inline capacity must route through the
  // per-team fallback lock, including the broadcast acknowledgement
  // handshake, and still combine exactly once per member.
  struct Big {
    std::int64_t v[16];  // 128 bytes > ReductionTree::kSlotBytes
  };
  static_assert(sizeof(Big) > rt::ReductionTree::kSlotBytes);
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        for (int r = 0; r < 60; ++r) {
          Big mine{};
          for (int k = 0; k < 16; ++k) {
            mine.v[k] = (thread_num() + 1) * (k + 1);
          }
          const Big all = allreduce(mine, [](Big x, const Big& y) {
            for (int k = 0; k < 16; ++k) x.v[k] += y.v[k];
            return x;
          });
          for (int k = 0; k < 16; ++k) {
            if (all.v[k] != 10 * (k + 1)) {  // sum of tids+1 = 10 for 4 threads
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, NestedParallelBetweenReductionsKeepsSequence) {
  // A nested fork's Team constructor zeroes the member's red_seq; on return
  // the outer region must resume its reduction sequence where it left off
  // (pool.cpp SavedBinding). A rewound sequence would satisfy the tree's
  // token waits with a previous construct's stale partials — or deadlock
  // when only some members nested.
  set_max_active_levels(2);
  constexpr long kThreads = 4;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        for (long r = 0; r < 10; ++r) {
          const long a = allreduce(long(thread_num()) + 1, std::plus<>{});
          if (a != kThreads * (kThreads + 1) / 2) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          parallel(
              [&] {
                const long inner = allreduce(long{1}, std::plus<>{});
                if (inner != num_threads()) {
                  mismatches.fetch_add(1, std::memory_order_relaxed);
                }
              },
              ParallelOptions{2, true});
          const long b = allreduce(long(thread_num()) + 1 + r, std::plus<>{});
          if (b != kThreads * (kThreads + 1) / 2 + kThreads * r) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      ParallelOptions{static_cast<rt::i32>(kThreads), true});
  set_max_active_levels(1);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, ConcurrentTeamsReduceIndependently) {
  // Two root threads fork separate teams that reduce simultaneously. The
  // retired protocol took one *global* named critical here, serialising the
  // teams; the per-team trees must neither serialise nor cross-talk.
  auto run = [](std::int64_t seed, std::atomic<int>& mismatches) {
    for (int r = 0; r < 40; ++r) {
      const std::int64_t s = parallel_reduce(
          rt::i64{0}, rt::i64{2000}, std::int64_t{0}, std::plus<>{},
          [&](rt::i64 i) { return i + seed; },
          ForOptions{{rt::ScheduleKind::kDynamic, 3}, false},
          ParallelOptions{4, true});
      const std::int64_t want = 2000 * 1999 / 2 + 2000 * seed;
      if (s != want) mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::atomic<int> mismatches{0};
  std::thread t1(run, 1, std::ref(mismatches));
  std::thread t2(run, 1000, std::ref(mismatches));
  t1.join();
  t2.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace zomp
