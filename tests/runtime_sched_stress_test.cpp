// Stress tests for the work-stealing scheduler substrate (PR 1 tentpole):
// task storms across the steal path, nested parallelism inside tasks,
// taskwait/taskgroup ordering under contention, deque-overflow inline
// execution, and a randomized worksharing sweep that checks the
// exactly-once invariant for every schedule kind. Designed to run under
// ThreadSanitizer (CI's Debug+TSan job); keep the iteration counts modest.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "runtime/runtime.h"

namespace zomp {
namespace {

TEST(SchedStressTest, SingleProducerStormIsFullyStolen) {
  // All tasks are spawned by member 0, which then refuses to execute any of
  // them: every completion must come from another member's steal. This pins
  // the thief side of the deque (CAS on top) under real contention.
  constexpr int kTasks = 512;
  constexpr int kThreads = 4;
  std::atomic<int> done{0};
  std::atomic<int> stolen{0};
  parallel(
      [&] {
        if (thread_num() == 0) {
          for (int i = 0; i < kTasks; ++i) {
            task([&] {
              if (thread_num() != 0) stolen.fetch_add(1, std::memory_order_relaxed);
              done.fetch_add(1, std::memory_order_relaxed);
            });
          }
          // Wait for the thieves without helping (yield, don't run tasks):
          // the members parked in the region-end barrier drain the pool.
          while (done.load(std::memory_order_acquire) < kTasks) {
            std::this_thread::yield();
          }
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(done.load(), kTasks);
  // Member 0 never ran a task body after spawning, so every task that ran on
  // a non-zero tid was stolen; the producer's own queue drained via steals.
  EXPECT_EQ(stolen.load(), kTasks) << "steal path must serve the whole storm";
}

TEST(SchedStressTest, AllMembersStormWithInterleavedConsumption) {
  // Every member produces and consumes concurrently (taskwait interleaved),
  // mixing owner pop and thief steal on every deque at once.
  constexpr int kPerMember = 300;
  constexpr int kThreads = 4;
  std::atomic<long> sum{0};
  long expect = 0;
  for (int i = 0; i < kPerMember; ++i) expect += i;
  parallel(
      [&] {
        for (int i = 0; i < kPerMember; ++i) {
          task([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
          if (i % 64 == 63) taskwait();
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(sum.load(), expect * kThreads);
}

TEST(SchedStressTest, DequeOverflowExecutesInline) {
  // More tasks than the bounded deque holds: the overflow must execute
  // inline at the creation point, never hang and never lose a task.
  const int kTasks = static_cast<int>(rt::WorkStealingDeque::kCapacity) + 500;
  std::atomic<int> done{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < kTasks; ++i) {
            task([&] { done.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      },
      ParallelOptions{2, true});
  EXPECT_EQ(done.load(), kTasks);
}

TEST(SchedStressTest, NestedParallelInsideTasks) {
  // Tasks that fork their own (active) nested teams: ThreadState save/restore
  // and per-team task pools must not bleed into each other.
  set_max_active_levels(2);
  constexpr int kTasks = 16;
  constexpr int kInner = 2;
  std::atomic<int> inner_runs{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < kTasks; ++i) {
            task([&] {
              parallel([&] { inner_runs.fetch_add(1, std::memory_order_relaxed); },
                       ParallelOptions{kInner, true});
            });
          }
        });
      },
      ParallelOptions{2, true});
  set_max_active_levels(1);
  // Every nested region contributes >= 1 (its master) and <= kInner members.
  EXPECT_GE(inner_runs.load(), kTasks);
  EXPECT_LE(inner_runs.load(), kTasks * kInner);
}

TEST(SchedStressTest, TaskwaitOrdersChildrenUnderContention) {
  // After taskwait, every child spawned before it must have completed, even
  // while sibling members flood the deques with their own tasks.
  constexpr int kRounds = 20;
  constexpr int kChildren = 24;
  std::atomic<int> violations{0};
  parallel(
      [&] {
        for (int r = 0; r < kRounds; ++r) {
          std::atomic<int> mine{0};
          for (int c = 0; c < kChildren; ++c) {
            task([&mine] { mine.fetch_add(1, std::memory_order_relaxed); });
          }
          taskwait();
          if (mine.load(std::memory_order_acquire) != kChildren) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      ParallelOptions{4, true});
  EXPECT_EQ(violations.load(), 0);
}

TEST(SchedStressTest, TaskgroupWaitsForDeepDescendants) {
  // taskgroup must hold for grandchildren spawned from stolen children while
  // other members contend for the same deques.
  constexpr int kOuter = 12;
  std::atomic<int> leaves{0};
  std::atomic<int> bad_exits{0};
  parallel(
      [&] {
        single([&] {
          taskgroup([&] {
            for (int i = 0; i < kOuter; ++i) {
              task([&] {
                task([&] {
                  task([&] { leaves.fetch_add(1, std::memory_order_relaxed); });
                });
              });
            }
          });
          if (leaves.load(std::memory_order_acquire) != kOuter) {
            bad_exits.fetch_add(1);
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(bad_exits.load(), 0);
  EXPECT_EQ(leaves.load(), kOuter);
}

TEST(SchedStressTest, PassiveWaitPolicyStillDrainsStorms) {
  // The passive policy yields instead of spinning; the storm must still
  // complete and the policy round-trip must hold.
  const rt::WaitPolicy saved = get_wait_policy();
  set_wait_policy(rt::WaitPolicy::kPassive);
  EXPECT_EQ(get_wait_policy(), rt::WaitPolicy::kPassive);
  std::atomic<int> done{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < 256; ++i) {
            task([&] { done.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      },
      ParallelOptions{4, true});
  set_wait_policy(saved);
  EXPECT_EQ(done.load(), 256);
}

// -- Hot-team doorbell stress (PR 3 tentpole; pool.h S1.6) -------------------

TEST(SchedStressTest, DoorbellParkUnparkStress) {
  // Exercise every doorbell wake state under TSan: rung while spinning
  // (back-to-back forks), rung while condvar-parked (sleeps between forks
  // outlast any grace), and rung across wait-policy flips. The alternating
  // sizes force hot-team dismiss/rebuild churn through the lock-free idle
  // stack at the same time.
  const rt::WaitPolicy saved = get_wait_policy();
  for (int round = 0; round < 60; ++round) {
    if (round % 20 == 10) set_wait_policy(rt::WaitPolicy::kPassive);
    if (round % 20 == 0) set_wait_policy(rt::WaitPolicy::kActive);
    const int want = 2 + (round % 3);  // 2, 3, 4, 2, ...
    std::atomic<int> n{0};
    parallel([&] { n.fetch_add(1, std::memory_order_relaxed); },
             ParallelOptions{want, true});
    ASSERT_EQ(n.load(), want) << "round " << round;
    if (round % 10 == 9) {
      // Outlast the doorbell grace so workers are condvar-parked when the
      // next region rings them.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  set_wait_policy(saved);
}

TEST(SchedStressTest, HotTeamRapidFireWithWorkshareAndReduce) {
  // Tight region cadence on a recycled team: every region runs a nowait
  // dynamic loop and one allreduce, so the dispatch ring, the reduction
  // tree's monotonic sequence gates and the doorbell handoff all churn
  // together across 200 reuses.
  constexpr std::int64_t n = 129;
  constexpr std::int64_t want_sum = n * (n - 1) / 2;
  std::atomic<int> bad{0};
  for (int round = 0; round < 200; ++round) {
    parallel(
        [&] {
          std::int64_t local = 0;
          for_each(
              0, n, [&](std::int64_t i) { local += i; },
              ForOptions{{rt::ScheduleKind::kDynamic, 2}, /*nowait=*/true});
          if (allreduce(local, std::plus<>{}) != want_sum) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        },
        ParallelOptions{4, true});
    ASSERT_EQ(bad.load(), 0) << "round " << round;
  }
}

TEST(SchedStressTest, ConcurrentMastersEachKeepAHotTeam) {
  // Several user threads fork back-to-back regions concurrently: each
  // caches its own hot team, so the idle stack sees concurrent pop/push
  // from dismissals while doorbells ring on disjoint worker sets.
  constexpr int kMasters = 3;
  constexpr int kRounds = 40;
  std::atomic<int> bad{0};
  std::vector<std::thread> masters;
  masters.reserve(kMasters);
  for (int m = 0; m < kMasters; ++m) {
    masters.emplace_back([&, m] {
      for (int r = 0; r < kRounds; ++r) {
        const int want = 2 + ((m + r) % 2);
        std::atomic<int> n{0};
        parallel([&] { n.fetch_add(1, std::memory_order_relaxed); },
                 ParallelOptions{want, true});
        // Pool contention may shrink a team; it must never over-deliver
        // or lose the master.
        if (n.load() < 1 || n.load() > want) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : masters) t.join();
  EXPECT_EQ(bad.load(), 0);
}

struct RandomLoopCase {
  unsigned seed;
};

class RandomizedDispatchStress : public ::testing::TestWithParam<RandomLoopCase> {};

TEST_P(RandomizedDispatchStress, EveryIterationExactlyOnceAcrossSchedules) {
  // Randomized (schedule, chunk, threads, trip count) sweep over the batched
  // shared-cursor dispatch: each iteration of each loop must run exactly
  // once, under every schedule kind, including chunk sizes around the batch
  // boundaries.
  std::mt19937 rng(GetParam().seed);
  for (int round = 0; round < 12; ++round) {
    const rt::ScheduleKind kind = static_cast<rt::ScheduleKind>(
        std::uniform_int_distribution<int>(0, 3)(rng));  // static..auto
    const rt::i64 chunk = std::uniform_int_distribution<rt::i64>(
        kind == rt::ScheduleKind::kDynamic ? 1 : 0, 9)(rng);
    const int threads = std::uniform_int_distribution<int>(1, 6)(rng);
    const rt::i64 n = std::uniform_int_distribution<rt::i64>(0, 3000)(rng);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    parallel(
        [&] {
          for_each(
              0, n,
              [&](rt::i64 i) {
                hits[static_cast<std::size_t>(i)].fetch_add(
                    1, std::memory_order_relaxed);
              },
              ForOptions{{kind, chunk}, false});
        },
        ParallelOptions{threads, true});
    for (rt::i64 i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "iteration " << i << " kind=" << static_cast<int>(kind)
          << " chunk=" << chunk << " threads=" << threads << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedDispatchStress,
                         ::testing::Values(RandomLoopCase{11u},
                                           RandomLoopCase{23u},
                                           RandomLoopCase{42u}));

TEST(SchedStressTest, DynamicGuidedFullCoverageUnderNowaitPressure) {
  // Back-to-back nowait dynamic/guided loops (ring reuse) while tasks are in
  // flight: the dispatch ring and the task deques share members but no state.
  constexpr rt::i64 n = 400;
  constexpr int kLoops = 12;
  std::vector<std::atomic<int>> hits(n * kLoops);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  std::atomic<int> tasks_done{0};
  parallel(
      [&] {
        for (int l = 0; l < kLoops; ++l) {
          task([&] { tasks_done.fetch_add(1, std::memory_order_relaxed); });
          const rt::ScheduleKind kind = (l % 2 == 0)
                                            ? rt::ScheduleKind::kDynamic
                                            : rt::ScheduleKind::kGuided;
          for_each(
              0, n,
              [&](rt::i64 i) {
                hits[static_cast<std::size_t>(l * n + i)].fetch_add(
                    1, std::memory_order_relaxed);
              },
              ForOptions{{kind, 1}, /*nowait=*/true});
        }
        barrier();
      },
      ParallelOptions{4, true});
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
  EXPECT_EQ(tasks_done.load(), 4 * kLoops);
}

// ---------------------------------------------------------------------------
// Reduction subsystem stress (runtime/reduce.h, the PR's tree-combine path).
// All of these must stay TSan-clean: the tree's token protocol, the slot
// reuse gate and the broadcast double-buffer are exactly the state a data
// race would corrupt.
// ---------------------------------------------------------------------------

TEST(SchedStressTest, BackToBackAllreducesWithoutBarriers) {
  // Consecutive rendezvous with no intervening team barrier: construct k+1's
  // deposits chase construct k's combine through the done_seq gate, and the
  // broadcast buffers alternate by parity. Any reuse race shows up as a
  // wrong sum (or a TSan report).
  constexpr int kThreads = 8;
  constexpr int kRounds = 300;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        const long tid = thread_num();
        for (long r = 0; r < kRounds; ++r) {
          const long all = allreduce(tid + 1 + r, std::plus<>{});
          const long want =
              kThreads * (kThreads + 1) / 2 + kThreads * r;
          if (all != want) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, ReduceEachUnderDynamicScheduleStress) {
  // reduce_each = nowait dynamic loop + one tree rendezvous per round; the
  // dispatch ring and the reduction slots recycle together.
  constexpr int kThreads = 8;
  constexpr rt::i64 n = 5000;
  constexpr rt::i64 want = n * (n - 1) / 2;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        for (int round = 0; round < 25; ++round) {
          const rt::i64 s = reduce_each(
              0, n, rt::i64{0}, std::plus<>{},
              [](rt::i64 i) { return i; },
              ForOptions{{rt::ScheduleKind::kDynamic, 7}, false});
          if (s != want) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, OversizedReductionTakesFallbackLockPath) {
  // A payload wider than a slot's inline capacity must route through the
  // per-team fallback lock, including the broadcast acknowledgement
  // handshake, and still combine exactly once per member.
  struct Big {
    std::int64_t v[16];  // 128 bytes > ReductionTree::kSlotBytes
  };
  static_assert(sizeof(Big) > rt::ReductionTree::kSlotBytes);
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        for (int r = 0; r < 60; ++r) {
          Big mine{};
          for (int k = 0; k < 16; ++k) {
            mine.v[k] = (thread_num() + 1) * (k + 1);
          }
          const Big all = allreduce(mine, [](Big x, const Big& y) {
            for (int k = 0; k < 16; ++k) x.v[k] += y.v[k];
            return x;
          });
          for (int k = 0; k < 16; ++k) {
            if (all.v[k] != 10 * (k + 1)) {  // sum of tids+1 = 10 for 4 threads
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, NestedParallelBetweenReductionsKeepsSequence) {
  // A nested fork's Team constructor zeroes the member's red_seq; on return
  // the outer region must resume its reduction sequence where it left off
  // (pool.cpp SavedBinding). A rewound sequence would satisfy the tree's
  // token waits with a previous construct's stale partials — or deadlock
  // when only some members nested.
  set_max_active_levels(2);
  constexpr long kThreads = 4;
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        for (long r = 0; r < 10; ++r) {
          const long a = allreduce(long(thread_num()) + 1, std::plus<>{});
          if (a != kThreads * (kThreads + 1) / 2) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          parallel(
              [&] {
                const long inner = allreduce(long{1}, std::plus<>{});
                if (inner != num_threads()) {
                  mismatches.fetch_add(1, std::memory_order_relaxed);
                }
              },
              ParallelOptions{2, true});
          const long b = allreduce(long(thread_num()) + 1 + r, std::plus<>{});
          if (b != kThreads * (kThreads + 1) / 2 + kThreads * r) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      ParallelOptions{static_cast<rt::i32>(kThreads), true});
  set_max_active_levels(1);
  EXPECT_EQ(mismatches.load(), 0);
}

// -- Task-graph stress (depend/taskgroup/taskloop, DESIGN.md S1.7) -----------

TEST(TaskGraphStressTest, DiamondDependencePattern) {
  // A -> {B, C} -> D, repeated: A must complete before B/C start, both
  // before D. B and C race — only the declared edges order anything.
  constexpr int kRounds = 60;
  std::atomic<int> violations{0};
  parallel(
      [&] {
        single([&] {
          for (int r = 0; r < kRounds; ++r) {
            int x = 0, y = 0;  // dependence tokens (addresses only)
            std::atomic<int> a_done{0}, bc_done{0};
            task_depend({dep_out(&x)}, [&] {
              a_done.store(1, std::memory_order_relaxed);
            });
            task_depend({dep_in(&x), dep_out(&y)}, [&] {
              if (a_done.load(std::memory_order_relaxed) != 1) violations++;
              bc_done.fetch_add(1, std::memory_order_relaxed);
            });
            // Second reader of x writes a DIFFERENT token, so B and C stay
            // concurrent; D fans in on both.
            int z = 0;
            task_depend({dep_in(&x), dep_out(&z)}, [&] {
              if (a_done.load(std::memory_order_relaxed) != 1) violations++;
              bc_done.fetch_add(1, std::memory_order_relaxed);
            });
            task_depend({dep_in(&y), dep_in(&z)}, [&] {
              if (bc_done.load(std::memory_order_relaxed) != 2) violations++;
            });
            taskwait();
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(violations.load(), 0);
}

TEST(TaskGraphStressTest, LongInoutChainIsStrictlySerialised) {
  // inout-chained tasks may never overlap or reorder: without locks, the
  // value threads through the chain exactly once per link. TSan would flag
  // any missed happens-before edge on the unsynchronised accumulator.
  constexpr int kLinks = 400;
  constexpr long kMod = 1000003;  // keeps the affine chain in i64 range
  long acc = 0;  // deliberately NOT atomic: the chain is the only ordering
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < kLinks; ++i) {
            // Distinct affine links: composition does not commute, so any
            // reordering (not just a lost link) changes the result.
            task_depend({dep_inout(&acc)},
                        [&acc, i] { acc = (acc * 3 + i) % kMod; });
          }
          taskwait();
        });
      },
      ParallelOptions{4, true});
  long expect = 0;
  for (int i = 0; i < kLinks; ++i) expect = (expect * 3 + i) % kMod;
  EXPECT_EQ(acc, expect);
}

TEST(TaskGraphStressTest, FanInWaitsForAllPredecessors) {
  // K independent writers, one reader with in-deps on every address: the
  // reader must observe all K unsynchronised writes (edges are the only
  // happens-before), repeated under churn.
  constexpr int kWriters = 16;
  constexpr int kRounds = 30;
  std::atomic<int> violations{0};
  parallel(
      [&] {
        single([&] {
          for (int r = 0; r < kRounds; ++r) {
            long slot[kWriters] = {};
            std::vector<rt::DepSpec> fan;
            for (int w = 0; w < kWriters; ++w) {
              task_depend({dep_out(&slot[w])}, [&slot, w] { slot[w] = w + 1; });
              fan.push_back(dep_in(&slot[w]));
            }
            rt::ThreadState& ts = rt::current_thread();
            rt::TaskOpts opts;
            opts.deps = fan.data();
            opts.ndeps = static_cast<rt::i32>(fan.size());
            ts.team->task_create_ex(
                ts,
                [&] {
                  for (int w = 0; w < kWriters; ++w) {
                    if (slot[w] != w + 1) violations++;
                  }
                },
                opts);
            taskwait();
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(violations.load(), 0);
}

TEST(TaskGraphStressTest, ReadersRunConcurrentlyBetweenWriters) {
  // writer -> N readers -> writer: the second writer must wait for every
  // reader (reader-set edges), and the readers must all see the first write.
  constexpr int kReaders = 12;
  constexpr int kRounds = 25;
  std::atomic<int> violations{0};
  parallel(
      [&] {
        single([&] {
          for (int r = 0; r < kRounds; ++r) {
            long v = 0;
            std::atomic<int> reads{0};
            task_depend({dep_out(&v)}, [&v] { v = 42; });
            for (int i = 0; i < kReaders; ++i) {
              task_depend({dep_in(&v)}, [&] {
                if (v != 42) violations++;
                reads.fetch_add(1, std::memory_order_relaxed);
              });
            }
            task_depend({dep_inout(&v)}, [&] {
              if (reads.load(std::memory_order_relaxed) != kReaders) violations++;
              v = 7;
            });
            taskwait();
            if (v != 7) violations++;
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(violations.load(), 0);
}

TEST(TaskGraphStressTest, DequeOverflowReleasesPendingSuccessors) {
  // More predecessor tasks than the bounded deque holds, each with a parked
  // successor: overflow executes predecessors inline at creation, which must
  // STILL release their successors (the rejected-task path calls the same
  // completion hook).
  const int kPairs = static_cast<int>(rt::WorkStealingDeque::kCapacity) + 200;
  std::vector<long> tokens(static_cast<std::size_t>(kPairs), 0);
  std::atomic<int> done{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < kPairs; ++i) {
            long* t = &tokens[static_cast<std::size_t>(i)];
            task_depend({dep_out(t)}, [t] { *t = 1; });
            task_depend({dep_in(t)}, [t, &done] {
              if (*t == 1) done.fetch_add(1, std::memory_order_relaxed);
            });
          }
        });
      },
      ParallelOptions{2, true});
  EXPECT_EQ(done.load(), kPairs);
}

TEST(TaskGraphStressTest, ConcurrentTaskgroupsOnAllMembers) {
  // Every member opens its own taskgroup and nests tasks two levels deep;
  // groups are per-task-context state and must not cross-talk.
  constexpr int kThreads = 4;
  constexpr int kPerMember = 25;
  std::atomic<int> violations{0};
  parallel(
      [&] {
        std::atomic<int> mine{0};
        taskgroup([&] {
          for (int i = 0; i < kPerMember; ++i) {
            task([&mine] {
              task([&mine] { mine.fetch_add(1, std::memory_order_relaxed); });
            });
          }
        });
        if (mine.load(std::memory_order_relaxed) != kPerMember) violations++;
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(violations.load(), 0);
}

TEST(TaskGraphStressTest, TaskloopChunksCoverExactlyOnce) {
  // taskloop under every chunking clause: each index incremented exactly
  // once, with concurrent taskloops from different members.
  constexpr rt::i64 kN = 600;
  for (const TaskloopOptions opts :
       {TaskloopOptions{0, 0}, TaskloopOptions{7, 0}, TaskloopOptions{0, 13},
        TaskloopOptions{1, 0}, TaskloopOptions{0, 1}}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    parallel(
        [&] {
          single([&] {
            taskloop(
                rt::i64{0}, kN,
                [&](rt::i64 i) {
                  hits[static_cast<std::size_t>(i)].fetch_add(
                      1, std::memory_order_relaxed);
                },
                opts);
          });
        },
        ParallelOptions{4, true});
    for (rt::i64 i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " grainsize=" << opts.grainsize
          << " num_tasks=" << opts.num_tasks;
    }
  }
}

TEST(TaskGraphStressTest, BarrierParkWakesForLateTaskBurst) {
  // Workers reach the join barrier and condvar-park past the doorbell grace
  // (passive policy parks almost immediately) while the master sits in a
  // long serial phase, then floods tasks: parked waiters must wake and the
  // barrier must still drain everything. Exercises the WaitGate handshake
  // under TSan.
  const auto saved = get_wait_policy();
  set_wait_policy(rt::WaitPolicy::kPassive);
  constexpr int kTasks = 300;
  std::atomic<int> done{0};
  parallel(
      [&] {
        if (thread_num() == 0) {
          // Outlast every waiter's grace so they actually park.
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          for (int i = 0; i < kTasks; ++i) {
            task([&] { done.fetch_add(1, std::memory_order_relaxed); });
          }
        }
      },
      ParallelOptions{4, true});
  set_wait_policy(saved);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(TaskGraphStressTest, FinalTasksRunIncludedSubtrees) {
  // A final task's whole subtree executes undeferred on the encountering
  // thread; mixed with normal deferred siblings under contention.
  constexpr int kRounds = 40;
  std::atomic<int> subtree{0};
  std::atomic<int> wrong_thread{0};
  parallel(
      [&] {
        single([&] {
          const int creator = thread_num();
          for (int r = 0; r < kRounds; ++r) {
            task([&] { /* deferred noise */ });
            rt::ThreadState& ts = rt::current_thread();
            rt::TaskOpts opts;
            opts.final = true;
            ts.team->task_create_ex(
                ts,
                [&, creator] {
                  if (thread_num() != creator) wrong_thread++;
                  task([&, creator] {  // included: still inline, same thread
                    if (thread_num() != creator) wrong_thread++;
                    subtree.fetch_add(1, std::memory_order_relaxed);
                  });
                },
                opts);
          }
          taskwait();
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(subtree.load(), kRounds);
  EXPECT_EQ(wrong_thread.load(), 0);
}

TEST(SchedStressTest, HotTeamRebindStress) {
  // TSan-checked churn over the affinity-aware hot cache: bind kinds, team
  // sizes, and nesting all alternate, so teams are recycled, rebuilt (bind
  // signature is part of the key), and rebound while workers park/unpark on
  // their doorbells. Allreduce checks every member took the right region.
  set_max_active_levels(2);
  const rt::BindKind kinds[] = {rt::BindKind::kUnset, rt::BindKind::kClose,
                                rt::BindKind::kSpread, rt::BindKind::kPrimary};
  std::atomic<int> mismatches{0};
  for (int r = 0; r < 120; ++r) {
    ParallelOptions opts;
    opts.num_threads = (r % 3) + 2;  // 2, 3, 4
    opts.proc_bind = kinds[r % 4];
    parallel(
        [&] {
          const int n = num_threads();
          if (allreduce(1, std::plus<>{}) != n) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          if (r % 5 == 0) {
            // Nested bound team from the (possibly bound) outer member:
            // exercises the per-level slots and partition inheritance.
            ParallelOptions inner;
            inner.num_threads = 2;
            inner.proc_bind = rt::BindKind::kSpread;
            parallel(
                [&] {
                  const int m = num_threads();
                  if (allreduce(1, std::plus<>{}) != m) {
                    mismatches.fetch_add(1, std::memory_order_relaxed);
                  }
                },
                inner);
          }
        },
        opts);
  }
  set_max_active_levels(1);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, ConcurrentMastersRebindIndependently) {
  // Three root threads churn bound teams concurrently: per-thread hot slots,
  // the idle stack, and sched_setaffinity caching must not cross-talk.
  auto churn = [](int seed, std::atomic<int>& mismatches) {
    const rt::BindKind kinds[] = {rt::BindKind::kClose, rt::BindKind::kSpread};
    for (int r = 0; r < 60; ++r) {
      ParallelOptions opts;
      opts.num_threads = ((r + seed) % 2) + 2;
      opts.proc_bind = kinds[(r + seed) % 2];
      parallel(
          [&] {
            const int n = num_threads();
            if (allreduce(1, std::plus<>{}) != n) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          },
          opts);
    }
  };
  std::atomic<int> mismatches{0};
  std::thread t1(churn, 0, std::ref(mismatches));
  std::thread t2(churn, 1, std::ref(mismatches));
  std::thread t3(churn, 2, std::ref(mismatches));
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// -- Locality-aware steal path (DESIGN.md S1.9) ------------------------------

TEST(SchedStressTest, StealTelemetryCountsAttemptsAndLostRaces) {
  // Single-producer storm with many thieves contending on one deque: the
  // per-member steal counters (written only by their owner inside take, read
  // quiescently after the join) must account for every stolen task, and
  // lost-CAS retries can never exceed attempts. This is the measurement the
  // staggered steal-scan starts exist to keep low — convoying thieves all
  // losing the same CAS shows up directly in steal_lost.
  constexpr int kTasks = 1024;
  constexpr int kThreads = 8;
  std::atomic<int> done{0};
  rt::Team* team = nullptr;
  parallel(
      [&] {
        if (thread_num() == 0) {
          team = rt::current_thread().team;
          for (int i = 0; i < kTasks; ++i) {
            task([&] { done.fetch_add(1, std::memory_order_relaxed); });
          }
          while (done.load(std::memory_order_acquire) < kTasks) {
            std::this_thread::yield();
          }
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(done.load(), kTasks);
  // Post-join quiescent read: workers have checked out and parked, the team
  // survives in the master's hot cache.
  ASSERT_NE(team, nullptr);
  const rt::StealStats stats = team->tasks().stats_total();
  EXPECT_GT(stats.steal_attempts, 0u)
      << "a yielding producer means every completion was a steal";
  EXPECT_LE(stats.steal_lost, stats.steal_attempts)
      << "lost CAS races are a subset of attempts";
}

TEST(SchedStressTest, RemoteMailboxBurstWakesParkedWaiters) {
  // Regression for the maybe_empty pre-filter audit: waiters condvar-park in
  // the join barrier past the doorbell grace, then the single winner sprays
  // a taskloop whose chunks land in OTHER members' mailboxes (push_remote).
  // Parked waiters must wake for work they did not see published and the
  // barrier must drain everything — under TSan this also checks the
  // mailbox count/lock publication order.
  const auto saved = get_wait_policy();
  set_wait_policy(rt::WaitPolicy::kPassive);
  constexpr rt::i64 kN = 512;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(kN));
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  ParallelOptions opts;
  opts.num_threads = 4;
  opts.proc_bind = rt::BindKind::kSpread;  // multi-place -> spray enabled
  parallel(
      [&] {
        single([&] {
          // Outlast the waiters' grace so they are parked when the burst
          // arrives through their mailboxes.
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          taskloop(
              rt::i64{0}, kN,
              [&](rt::i64 i) {
                hits[static_cast<std::size_t>(i)].fetch_add(
                    1, std::memory_order_relaxed);
              },
              TaskloopOptions{0, 32});
        });
      },
      opts);
  set_wait_policy(saved);
  for (rt::i64 i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(SchedStressTest, ConcurrentTeamsReduceIndependently) {
  // Two root threads fork separate teams that reduce simultaneously. The
  // retired protocol took one *global* named critical here, serialising the
  // teams; the per-team trees must neither serialise nor cross-talk.
  auto run = [](std::int64_t seed, std::atomic<int>& mismatches) {
    for (int r = 0; r < 40; ++r) {
      const std::int64_t s = parallel_reduce(
          rt::i64{0}, rt::i64{2000}, std::int64_t{0}, std::plus<>{},
          [&](rt::i64 i) { return i + seed; },
          ForOptions{{rt::ScheduleKind::kDynamic, 3}, false},
          ParallelOptions{4, true});
      const std::int64_t want = 2000 * 1999 / 2 + 2000 * seed;
      if (s != want) mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::atomic<int> mismatches{0};
  std::thread t1(run, 1, std::ref(mismatches));
  std::thread t2(run, 1000, std::ref(mismatches));
  t1.join();
  t2.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SchedStressTest, DequeOverflowSharesDiscardHookWithCancellation) {
  // Overflowing tasks route through execute_task — the SAME completion hook
  // the cancellation discard rides — so once the taskgroup is cancelled,
  // even tasks the producer must run inline (deque full) skip their bodies
  // while keeping parent/group accounting. Regression for the earlier
  // overflow path that ran bodies unconditionally: under a cancelled group
  // that both executed discarded work and, with the accounting divergence,
  // could leave taskgroup_end waiting forever.
  rt::GlobalIcv::instance().set_cancellation(true);
  constexpr int kTasks = 3000;  // ~2x the bounded deque capacity (1024)
  std::atomic<int> ran{0};
  std::atomic<bool> gate{false};
  parallel(
      [&] {
        if (thread_num() == 0) {
          taskgroup([&] {
            // The first task is the oldest deque entry, so the lone worker's
            // first steal blocks on it: the backlog can only drain through
            // the producer's own overflow-inline path until the gate opens.
            task([&] {
              while (!gate.load(std::memory_order_acquire)) {
                std::this_thread::yield();
              }
            });
            for (int t = 0; t < kTasks; ++t) {
              task([&] { ran.fetch_add(1, std::memory_order_relaxed); });
            }
            // Cancel with the deque still full: everything queued must be
            // discarded at take time, by worker and producer alike.
            rt::ThreadState& ts = rt::current_thread();
            ts.team->cancel_taskgroup(ts);
            gate.store(true, std::memory_order_release);
          });
        }
      },
      ParallelOptions{2});
  // Overflow-inlined tasks before the cancel ran; the queued backlog (the
  // full deque, ~1024 tasks) was discarded. Completing at all proves the
  // discard kept the group counts balanced.
  EXPECT_GT(ran.load(), 0);
  EXPECT_LT(ran.load(), kTasks - 500);
  rt::GlobalIcv::instance().set_cancellation(false);

  // The shared hook left no residue: a fresh group runs everything.
  std::atomic<int> clean{0};
  parallel(
      [&] {
        if (thread_num() == 0) {
          taskgroup([&] {
            for (int t = 0; t < 32; ++t) {
              task([&] { clean.fetch_add(1, std::memory_order_relaxed); });
            }
          });
        }
      },
      ParallelOptions{2});
  EXPECT_EQ(clean.load(), 32);
}

}  // namespace
}  // namespace zomp
