// Unit tests: environment handling and schedule parsing (runtime/env.h).
#include <gtest/gtest.h>

#include <cstdlib>

#include "runtime/env.h"

namespace zomp::rt {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("ZOMP_TESTVAR");
    unsetenv("OMP_TESTVAR");
  }
};

TEST_F(EnvTest, UnsetReturnsNullopt) {
  EXPECT_FALSE(env_string("TESTVAR").has_value());
  EXPECT_FALSE(env_int("TESTVAR").has_value());
  EXPECT_FALSE(env_bool("TESTVAR").has_value());
}

TEST_F(EnvTest, OmpPrefixIsRead) {
  setenv("OMP_TESTVAR", "17", 1);
  EXPECT_EQ(env_int("TESTVAR"), 17);
}

TEST_F(EnvTest, ZompPrefixWinsOverOmp) {
  setenv("OMP_TESTVAR", "17", 1);
  setenv("ZOMP_TESTVAR", "42", 1);
  EXPECT_EQ(env_int("TESTVAR"), 42);
}

TEST_F(EnvTest, MalformedIntIsRejected) {
  setenv("ZOMP_TESTVAR", "seventeen", 1);
  EXPECT_FALSE(env_int("TESTVAR").has_value());
}

TEST_F(EnvTest, IntWithTrailingGarbageIsRejected) {
  setenv("ZOMP_TESTVAR", "17abc", 1);
  EXPECT_FALSE(env_int("TESTVAR").has_value());
}

TEST_F(EnvTest, WhitespaceAroundIntIsAccepted) {
  setenv("ZOMP_TESTVAR", "  8 ", 1);
  EXPECT_EQ(env_int("TESTVAR"), 8);
}

TEST_F(EnvTest, BoolSpellings) {
  for (const char* t : {"true", "TRUE", "yes", "1", "on"}) {
    setenv("ZOMP_TESTVAR", t, 1);
    EXPECT_EQ(env_bool("TESTVAR"), true) << t;
  }
  for (const char* f : {"false", "False", "no", "0", "off"}) {
    setenv("ZOMP_TESTVAR", f, 1);
    EXPECT_EQ(env_bool("TESTVAR"), false) << f;
  }
  setenv("ZOMP_TESTVAR", "maybe", 1);
  EXPECT_FALSE(env_bool("TESTVAR").has_value());
}

struct ScheduleCase {
  const char* text;
  bool ok;
  ScheduleKind kind;
  i64 chunk;
};

class ScheduleParseTest : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleParseTest, Parses) {
  const ScheduleCase& c = GetParam();
  const auto parsed = parse_schedule(c.text);
  ASSERT_EQ(parsed.has_value(), c.ok) << c.text;
  if (c.ok) {
    EXPECT_EQ(parsed->kind, c.kind) << c.text;
    EXPECT_EQ(parsed->chunk, c.chunk) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpellings, ScheduleParseTest,
    ::testing::Values(
        ScheduleCase{"static", true, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,4", true, ScheduleKind::kStatic, 4},
        ScheduleCase{"STATIC, 16", true, ScheduleKind::kStatic, 16},
        ScheduleCase{"dynamic", true, ScheduleKind::kDynamic, 0},
        ScheduleCase{"dynamic,1", true, ScheduleKind::kDynamic, 1},
        ScheduleCase{"guided,8", true, ScheduleKind::kGuided, 8},
        ScheduleCase{"auto", true, ScheduleKind::kAuto, 0},
        ScheduleCase{"runtime", true, ScheduleKind::kRuntime, 0},
        ScheduleCase{"  guided  ", true, ScheduleKind::kGuided, 0},
        ScheduleCase{"bogus", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,0", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,-3", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,4x", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"", false, ScheduleKind::kStatic, 0}));

TEST(WaitPolicyParseTest, AcceptsActiveAndPassive) {
  EXPECT_EQ(parse_wait_policy("active"), WaitPolicy::kActive);
  EXPECT_EQ(parse_wait_policy("passive"), WaitPolicy::kPassive);
  EXPECT_EQ(parse_wait_policy("  PASSIVE "), WaitPolicy::kPassive);
  EXPECT_EQ(parse_wait_policy("Active"), WaitPolicy::kActive);
  EXPECT_FALSE(parse_wait_policy("spin").has_value());
  EXPECT_FALSE(parse_wait_policy("").has_value());
}

TEST(WaitPolicyParseTest, EnvVariantReadsWaitPolicy) {
  unsetenv("OMP_WAIT_POLICY");
  setenv("ZOMP_WAIT_POLICY", "passive", 1);
  EXPECT_EQ(env_wait_policy(), WaitPolicy::kPassive);
  setenv("ZOMP_WAIT_POLICY", "nonsense", 1);
  EXPECT_FALSE(env_wait_policy().has_value());
  unsetenv("ZOMP_WAIT_POLICY");
  EXPECT_FALSE(env_wait_policy().has_value());
}

TEST(ProcBindEnvTest, EnvVariantReadsBindList) {
  unsetenv("OMP_PROC_BIND");
  setenv("ZOMP_PROC_BIND", "spread, close", 1);
  const auto list = env_proc_bind();
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0], BindKind::kSpread);
  EXPECT_EQ((*list)[1], BindKind::kClose);
  setenv("ZOMP_PROC_BIND", "sideways", 1);
  EXPECT_FALSE(env_proc_bind().has_value());
  unsetenv("ZOMP_PROC_BIND");
  EXPECT_FALSE(env_proc_bind().has_value());
}

TEST(ProcBindEnvTest, BindKindsNamed) {
  EXPECT_STREQ(bind_kind_name(BindKind::kFalse), "false");
  EXPECT_STREQ(bind_kind_name(BindKind::kTrue), "true");
  EXPECT_STREQ(bind_kind_name(BindKind::kPrimary), "primary");
  EXPECT_STREQ(bind_kind_name(BindKind::kClose), "close");
  EXPECT_STREQ(bind_kind_name(BindKind::kSpread), "spread");
}

TEST(ScheduleNameTest, AllKindsNamed) {
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kStatic), "static");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kDynamic), "dynamic");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kGuided), "guided");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kAuto), "auto");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kRuntime), "runtime");
}

}  // namespace
}  // namespace zomp::rt
