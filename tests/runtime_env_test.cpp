// Unit tests: environment handling and schedule parsing (runtime/env.h).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "runtime/env.h"
#include "runtime/icv.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"

namespace zomp::rt {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("ZOMP_TESTVAR");
    unsetenv("OMP_TESTVAR");
  }
};

TEST_F(EnvTest, UnsetReturnsNullopt) {
  EXPECT_FALSE(env_string("TESTVAR").has_value());
  EXPECT_FALSE(env_int("TESTVAR").has_value());
  EXPECT_FALSE(env_bool("TESTVAR").has_value());
}

TEST_F(EnvTest, OmpPrefixIsRead) {
  setenv("OMP_TESTVAR", "17", 1);
  EXPECT_EQ(env_int("TESTVAR"), 17);
}

TEST_F(EnvTest, ZompPrefixWinsOverOmp) {
  setenv("OMP_TESTVAR", "17", 1);
  setenv("ZOMP_TESTVAR", "42", 1);
  EXPECT_EQ(env_int("TESTVAR"), 42);
}

TEST_F(EnvTest, MalformedIntIsRejected) {
  setenv("ZOMP_TESTVAR", "seventeen", 1);
  EXPECT_FALSE(env_int("TESTVAR").has_value());
}

TEST_F(EnvTest, IntWithTrailingGarbageIsRejected) {
  setenv("ZOMP_TESTVAR", "17abc", 1);
  EXPECT_FALSE(env_int("TESTVAR").has_value());
}

TEST_F(EnvTest, WhitespaceAroundIntIsAccepted) {
  setenv("ZOMP_TESTVAR", "  8 ", 1);
  EXPECT_EQ(env_int("TESTVAR"), 8);
}

TEST_F(EnvTest, BoolSpellings) {
  for (const char* t : {"true", "TRUE", "yes", "1", "on"}) {
    setenv("ZOMP_TESTVAR", t, 1);
    EXPECT_EQ(env_bool("TESTVAR"), true) << t;
  }
  for (const char* f : {"false", "False", "no", "0", "off"}) {
    setenv("ZOMP_TESTVAR", f, 1);
    EXPECT_EQ(env_bool("TESTVAR"), false) << f;
  }
  setenv("ZOMP_TESTVAR", "maybe", 1);
  EXPECT_FALSE(env_bool("TESTVAR").has_value());
}

struct ScheduleCase {
  const char* text;
  bool ok;
  ScheduleKind kind;
  i64 chunk;
};

class ScheduleParseTest : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleParseTest, Parses) {
  const ScheduleCase& c = GetParam();
  const auto parsed = parse_schedule(c.text);
  ASSERT_EQ(parsed.has_value(), c.ok) << c.text;
  if (c.ok) {
    EXPECT_EQ(parsed->kind, c.kind) << c.text;
    EXPECT_EQ(parsed->chunk, c.chunk) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpellings, ScheduleParseTest,
    ::testing::Values(
        ScheduleCase{"static", true, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,4", true, ScheduleKind::kStatic, 4},
        ScheduleCase{"STATIC, 16", true, ScheduleKind::kStatic, 16},
        ScheduleCase{"dynamic", true, ScheduleKind::kDynamic, 0},
        ScheduleCase{"dynamic,1", true, ScheduleKind::kDynamic, 1},
        ScheduleCase{"guided,8", true, ScheduleKind::kGuided, 8},
        ScheduleCase{"auto", true, ScheduleKind::kAuto, 0},
        ScheduleCase{"runtime", true, ScheduleKind::kRuntime, 0},
        ScheduleCase{"  guided  ", true, ScheduleKind::kGuided, 0},
        ScheduleCase{"bogus", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,0", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,-3", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"static,4x", false, ScheduleKind::kStatic, 0},
        ScheduleCase{"", false, ScheduleKind::kStatic, 0}));

TEST(WaitPolicyParseTest, AcceptsActiveAndPassive) {
  EXPECT_EQ(parse_wait_policy("active"), WaitPolicy::kActive);
  EXPECT_EQ(parse_wait_policy("passive"), WaitPolicy::kPassive);
  EXPECT_EQ(parse_wait_policy("  PASSIVE "), WaitPolicy::kPassive);
  EXPECT_EQ(parse_wait_policy("Active"), WaitPolicy::kActive);
  EXPECT_FALSE(parse_wait_policy("spin").has_value());
  EXPECT_FALSE(parse_wait_policy("").has_value());
}

TEST(WaitPolicyParseTest, EnvVariantReadsWaitPolicy) {
  unsetenv("OMP_WAIT_POLICY");
  setenv("ZOMP_WAIT_POLICY", "passive", 1);
  EXPECT_EQ(env_wait_policy(), WaitPolicy::kPassive);
  setenv("ZOMP_WAIT_POLICY", "nonsense", 1);
  EXPECT_FALSE(env_wait_policy().has_value());
  unsetenv("ZOMP_WAIT_POLICY");
  EXPECT_FALSE(env_wait_policy().has_value());
}

TEST(ProcBindEnvTest, EnvVariantReadsBindList) {
  unsetenv("OMP_PROC_BIND");
  setenv("ZOMP_PROC_BIND", "spread, close", 1);
  const auto list = env_proc_bind();
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0], BindKind::kSpread);
  EXPECT_EQ((*list)[1], BindKind::kClose);
  setenv("ZOMP_PROC_BIND", "sideways", 1);
  EXPECT_FALSE(env_proc_bind().has_value());
  unsetenv("ZOMP_PROC_BIND");
  EXPECT_FALSE(env_proc_bind().has_value());
}

TEST(ProcBindEnvTest, BindKindsNamed) {
  EXPECT_STREQ(bind_kind_name(BindKind::kFalse), "false");
  EXPECT_STREQ(bind_kind_name(BindKind::kTrue), "true");
  EXPECT_STREQ(bind_kind_name(BindKind::kPrimary), "primary");
  EXPECT_STREQ(bind_kind_name(BindKind::kClose), "close");
  EXPECT_STREQ(bind_kind_name(BindKind::kSpread), "spread");
}

// -- Unified malformed-env handling ------------------------------------------
//
// Every parser funnels bad input through warn_malformed_env: one stderr line
// per variable name (not per read), then the caller falls back to its
// default. The table sweeps garbage through each typed reader.

TEST(MalformedEnvWarnTest, WarnsAtMostOncePerVariable) {
  env_warn_reset_for_test();
  EXPECT_EQ(env_malformed_warning_count(), 0);
  warn_malformed_env("WARNVAR", "garbage");
  warn_malformed_env("WARNVAR", "different-garbage");
  warn_malformed_env("WARNVAR", "garbage", "with detail");
  EXPECT_EQ(env_malformed_warning_count(), 1);
  warn_malformed_env("OTHERVAR", "junk", "expected an integer");
  EXPECT_EQ(env_malformed_warning_count(), 2);
  env_warn_reset_for_test();
  EXPECT_EQ(env_malformed_warning_count(), 0);
}

struct GarbageEnvCase {
  const char* name;   // suffix; the test sets ZOMP_<name>
  const char* value;  // offending value
  int reader;         // 0 int, 1 bool, 2 schedule, 3 wait-policy, 4 proc-bind
};

class GarbageEnvTest : public ::testing::TestWithParam<GarbageEnvCase> {
 protected:
  void TearDown() override {
    unsetenv((std::string("ZOMP_") + GetParam().name).c_str());
    env_warn_reset_for_test();
  }
};

TEST_P(GarbageEnvTest, WarnsOnceAndFallsBackToDefault) {
  const GarbageEnvCase& c = GetParam();
  env_warn_reset_for_test();
  setenv((std::string("ZOMP_") + c.name).c_str(), c.value, 1);
  const auto read = [&] {
    switch (c.reader) {
      case 0: return !env_int(c.name).has_value();
      case 1: return !env_bool(c.name).has_value();
      case 2: return !env_schedule().has_value();
      case 3: return !env_wait_policy().has_value();
      default: return !env_proc_bind().has_value();
    }
  };
  // Rejected every time, warned exactly once across repeated reads.
  EXPECT_TRUE(read()) << c.name << "=" << c.value;
  EXPECT_TRUE(read()) << c.name << "=" << c.value;
  EXPECT_TRUE(read()) << c.name << "=" << c.value;
  EXPECT_EQ(env_malformed_warning_count(), 1) << c.name << "=" << c.value;
}

INSTANTIATE_TEST_SUITE_P(
    GarbageTable, GarbageEnvTest,
    ::testing::Values(GarbageEnvCase{"NUM_THREADS", "many", 0},
                      GarbageEnvCase{"NUM_THREADS", "4.5", 0},
                      GarbageEnvCase{"DYNAMIC", "perhaps", 1},
                      GarbageEnvCase{"SCHEDULE", "sometimes,fast", 2},
                      GarbageEnvCase{"SCHEDULE", "static,zero", 2},
                      GarbageEnvCase{"WAIT_POLICY", "spin", 3},
                      GarbageEnvCase{"PROC_BIND", "sideways", 4},
                      GarbageEnvCase{"PROC_BIND", "close,far", 4},
                      GarbageEnvCase{"METRICS", "sometimes", 1}));

// -- S12 observability ICVs ---------------------------------------------------

TEST(TraceEnvTest, EmptyTraceValueWarnsOnceAndStaysDisarmed) {
  env_warn_reset_for_test();
  setenv("ZOMP_TRACE", "", 1);
  // An empty path is malformed (nowhere to write): one funnel warning even
  // across re-reads, and the tracer stays disarmed with no output path.
  trace_init_from_env();
  trace_init_from_env();
  EXPECT_EQ(env_malformed_warning_count(), 1);
  EXPECT_TRUE(trace_output_path().empty());
  EXPECT_FALSE(trace_ring_enabled());
  unsetenv("ZOMP_TRACE");
  env_warn_reset_for_test();
}

TEST(MetricsEnvTest, MalformedMetricsValueWarnsAndStaysOff) {
  env_warn_reset_for_test();
  metrics_set_enabled_for_test(false);
  setenv("ZOMP_METRICS", "sometimes", 1);
  metrics_init_from_env();
  EXPECT_EQ(env_malformed_warning_count(), 1);
  EXPECT_FALSE(metrics_enabled());
  unsetenv("ZOMP_METRICS");
  env_warn_reset_for_test();
}

TEST(MetricsEnvTest, FalseMetricsValueStaysOffWithoutWarning) {
  env_warn_reset_for_test();
  metrics_set_enabled_for_test(false);
  setenv("ZOMP_METRICS", "false", 1);
  metrics_init_from_env();
  EXPECT_EQ(env_malformed_warning_count(), 0);
  EXPECT_FALSE(metrics_enabled());
  unsetenv("ZOMP_METRICS");
}

TEST(DisplayEnvTest, PrintsLibompStyleIcvTable) {
  ::testing::internal::CaptureStderr();
  GlobalIcv::instance().display_env(/*verbose=*/false);
  const std::string out = ::testing::internal::GetCapturedStderr();
  // libomp's fenced block format, one "  NAME = 'value'" line per ICV.
  EXPECT_NE(out.find("OPENMP DISPLAY ENVIRONMENT BEGIN"), std::string::npos)
      << out;
  EXPECT_NE(out.find("OPENMP DISPLAY ENVIRONMENT END"), std::string::npos);
  EXPECT_NE(out.find("  OMP_NUM_THREADS = '"), std::string::npos);
  EXPECT_NE(out.find("  OMP_SCHEDULE = '"), std::string::npos);
  EXPECT_NE(out.find("  OMP_WAIT_POLICY = '"), std::string::npos);
  EXPECT_NE(out.find("  OMP_PROC_BIND = '"), std::string::npos);
  EXPECT_NE(out.find("  OMP_CANCELLATION = '"), std::string::npos);
  // Terse mode omits the zomp extensions...
  EXPECT_EQ(out.find("ZOMP_FAULT_INJECT"), std::string::npos);
  EXPECT_EQ(out.find("ZOMP_TRACE"), std::string::npos);
  EXPECT_EQ(out.find("ZOMP_METRICS"), std::string::npos);

  ::testing::internal::CaptureStderr();
  GlobalIcv::instance().display_env(/*verbose=*/true);
  const std::string verbose = ::testing::internal::GetCapturedStderr();
  // ...verbose prints them.
  EXPECT_NE(verbose.find("  ZOMP_FAULT_INJECT = '"), std::string::npos)
      << verbose;
  EXPECT_NE(verbose.find("  ZOMP_TRACE = '"), std::string::npos) << verbose;
  EXPECT_NE(verbose.find("  ZOMP_METRICS = '"), std::string::npos) << verbose;
}

TEST(ScheduleNameTest, AllKindsNamed) {
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kStatic), "static");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kDynamic), "dynamic");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kGuided), "guided");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kAuto), "auto");
  EXPECT_STREQ(schedule_kind_name(ScheduleKind::kRuntime), "runtime");
}

}  // namespace
}  // namespace zomp::rt
