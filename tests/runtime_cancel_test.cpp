// Cancellation subsystem tests (DESIGN.md S10; OpenMP 5.2 §11).
//
// Three layers under test:
//   1. Team primitives — cancel_activate / cancellation_requested /
//      cancel_taskgroup, barrier abandonment, dispatch drain, discard-on-take.
//   2. The generated-code ABI constants and query routines.
//   3. End to end through BOTH backends: cancel.mz is run natively
//      transpiled (mzgen_cancel_mz) and interpreted from the same source,
//      with OMP_CANCELLATION on (regions drain early) and off (every cancel
//      is a no-op and the serial result comes out) — the PR's acceptance
//      gate.
//
// The whole file is TSan-clean by design: the stress tests below run under
// the CI thread-sanitizer job with cancellation enabled.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cancel_mz.h"
#include "core/pipeline.h"
#include "interp/interp.h"
#include "runtime/abi.h"
#include "runtime/api.h"
#include "runtime/hl.h"
#include "runtime/icv.h"
#include "runtime/team.h"

#ifndef ZOMP_SOURCE_DIR
#define ZOMP_SOURCE_DIR "."
#endif

namespace zomp::rt {
namespace {

/// Every test restores cancel-var: the ICV is process-wide and other suites
/// in this binary assume the default (disabled).
class CancelTest : public ::testing::Test {
 protected:
  void SetUp() override { GlobalIcv::instance().set_cancellation(true); }
  void TearDown() override { GlobalIcv::instance().set_cancellation(false); }
};

TEST(CancelDisabledTest, CancelIsNoOpWithoutIcv) {
  GlobalIcv::instance().set_cancellation(false);
  std::atomic<int> after{0};
  zomp::parallel(
      [&] {
        ThreadState& ts = current_thread();
        // Disabled: activation reports "do not branch" and no flag is set.
        EXPECT_FALSE(ts.team->cancel_activate(ts, Team::kCancelParallel));
        EXPECT_FALSE(ts.team->cancellation_requested(ts, Team::kCancelParallel));
        EXPECT_FALSE(zomp::barrier());
        after.fetch_add(1);
      },
      zomp::ParallelOptions{4});
  EXPECT_EQ(after.load(), 4);
  EXPECT_FALSE(zomp::get_cancellation());
  EXPECT_EQ(zomp_get_cancellation(), 0);
}

TEST_F(CancelTest, IcvQueriesReflectCancellation) {
  EXPECT_TRUE(zomp::get_cancellation());
  EXPECT_EQ(zomp_get_cancellation(), 1);
  EXPECT_EQ(mz_omp_get_cancellation(), 1);
  // ABI construct codes are the Team bitmask values — generated code and the
  // interpreter pass them through numerically.
  EXPECT_EQ(ZOMP_CANCEL_PARALLEL, Team::kCancelParallel);
  EXPECT_EQ(ZOMP_CANCEL_LOOP, Team::kCancelLoop);
}

TEST_F(CancelTest, CancelParallelAbandonsBarriersAndTeamRecovers) {
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  zomp::parallel(
      [&] {
        ThreadState& ts = current_thread();
        before.fetch_add(1);
        if (ts.tid == 0) {
          // The canceller branches straight to the region end.
          if (ts.team->cancel_activate(ts, Team::kCancelParallel)) return;
        }
        // Everyone else abandons their next barrier — whether they arrive
        // before or after the cancel — and heads for the region end too.
        if (zomp::barrier()) return;
        after.fetch_add(1);
      },
      zomp::ParallelOptions{4});
  EXPECT_EQ(before.load(), 4);
  EXPECT_EQ(after.load(), 0);

  // reset_cancellation at region end: the next region is undisturbed.
  std::atomic<int> clean{0};
  zomp::parallel(
      [&] {
        EXPECT_FALSE(zomp::barrier());
        clean.fetch_add(1);
      },
      zomp::ParallelOptions{4});
  EXPECT_EQ(clean.load(), 4);
}

TEST_F(CancelTest, LoopBitMatchesConstructAndClearsAtBarrier) {
  zomp::parallel(
      [&] {
        ThreadState& ts = current_thread();
        EXPECT_TRUE(ts.team->cancel_activate(ts, Team::kCancelLoop));
        EXPECT_TRUE(ts.team->cancellation_requested(ts, Team::kCancelLoop));
        // Construct kinds don't cross: a loop cancel is not a parallel cancel.
        EXPECT_FALSE(ts.team->cancellation_requested(ts, Team::kCancelParallel));
        // The cancelled loop's closing barrier completes normally (only
        // `cancel parallel` abandons barriers) and retires the loop bit.
        EXPECT_FALSE(zomp::barrier());
        EXPECT_FALSE(ts.team->cancellation_requested(ts, Team::kCancelLoop));
      },
      zomp::ParallelOptions{1});
}

TEST_F(CancelTest, CancelForDrainsDispatchAndNextLoopRuns) {
  constexpr i64 kIters = 100000;
  std::atomic<i64> executed{0};
  std::atomic<i64> second{0};
  zomp::parallel(
      [&] {
        ThreadState& ts = current_thread();
        Team& team = *ts.team;
        team.dispatch_init(ts, Schedule{ScheduleKind::kDynamic, 1}, 0, kIters,
                           1);
        i64 lo = 0, hi = 0;
        bool cancelled = false;
        while (team.dispatch_next(ts, &lo, &hi, nullptr)) {
          for (i64 i = lo; i < hi; ++i) {
            if (team.cancellation_requested(ts, Team::kCancelLoop)) {
              cancelled = true;
              break;
            }
            if (executed.fetch_add(1, std::memory_order_relaxed) >= 64) {
              // Whichever member crosses the threshold cancels; activation
              // always branches while the ICV is on, even when another
              // member set the flag first.
              cancelled = team.cancel_activate(ts, Team::kCancelLoop);
              EXPECT_TRUE(cancelled);
              break;
            }
          }
          if (cancelled) break;
        }
        // Mid-chunk escape: detach from the construct so the dispatch ring
        // entry frees (exhausted threads already detached; this is a no-op
        // for them).
        team.dispatch_break(ts);
        EXPECT_FALSE(zomp::barrier());  // clears the loop bit

        // The next worksharing construct on the same team is unaffected.
        team.dispatch_init(ts, Schedule{ScheduleKind::kDynamic, 4}, 0, 1000, 1);
        while (team.dispatch_next(ts, &lo, &hi, nullptr)) {
          second.fetch_add(hi - lo, std::memory_order_relaxed);
        }
        EXPECT_FALSE(zomp::barrier());
      },
      zomp::ParallelOptions{4});
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), kIters);
  EXPECT_EQ(second.load(), 1000);
}

TEST_F(CancelTest, CancelTaskgroupDiscardsQueuedTasks) {
  constexpr int kTasks = 256;
  std::atomic<int> ran{0};
  zomp::parallel(
      [&] {
        zomp::single([&] {
          zomp::taskgroup([&] {
            for (int t = 0; t < kTasks; ++t) {
              zomp::task([&] {
                ran.fetch_add(1);
                ThreadState& ts = current_thread();
                ts.team->cancel_taskgroup(ts);
              });
            }
          });
        });
      },
      zomp::ParallelOptions{2});
  // The first completed task cancels the group; everything still queued is
  // discarded at take time (bodies skipped, completion accounting kept, so
  // taskgroup_end returned). At most the tasks already in flight ran.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LT(ran.load(), kTasks);
}

TEST_F(CancelTest, TaskgroupCancelObservedByCallingTask) {
  zomp::parallel(
      [&] {
        ThreadState& ts = current_thread();
        EXPECT_FALSE(ts.team->taskgroup_cancelled(ts));
        // No taskgroup active: nothing to cancel.
        EXPECT_FALSE(ts.team->cancel_taskgroup(ts));
        zomp::taskgroup([&] {
          EXPECT_TRUE(ts.team->cancel_taskgroup(ts));
          EXPECT_TRUE(ts.team->taskgroup_cancelled(ts));
        });
        EXPECT_FALSE(ts.team->taskgroup_cancelled(ts));
      },
      zomp::ParallelOptions{1});
}

// -- Stress: every interleaving of cancel vs barrier arrival must terminate --
//
// Rotates the cancelling member and the amount of pre-cancel work so some
// members are parked in the barrier when the cancel lands, some arrive
// after, and some race it. Any lost wake-up or leaked barrier arrival hangs
// the test; any flag torn across regions fails the `clean` assertion. Run
// under TSan in CI with the fault-injection matrix.
TEST_F(CancelTest, CancelParallelStress) {
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> entered{0};
    zomp::parallel(
        [&] {
          ThreadState& ts = current_thread();
          entered.fetch_add(1);
          for (volatile int spin = 0; spin < (ts.tid * 37 + round) % 101;
               ++spin) {
          }
          if (ts.tid == round % 4) {
            if (ts.team->cancel_activate(ts, Team::kCancelParallel)) return;
          }
          for (int b = 0; b < 3; ++b) {
            if (zomp::barrier()) return;
          }
        },
        zomp::ParallelOptions{4});
    ASSERT_EQ(entered.load(), 4) << "round " << round;
  }
}

TEST_F(CancelTest, CancelForStress) {
  for (int round = 0; round < 100; ++round) {
    std::atomic<i64> done{0};
    zomp::parallel(
        [&] {
          ThreadState& ts = current_thread();
          Team& team = *ts.team;
          team.dispatch_init(ts, Schedule{ScheduleKind::kDynamic, 1}, 0, 4096,
                             1);
          i64 lo = 0, hi = 0;
          bool esc = false;
          while (!esc && team.dispatch_next(ts, &lo, &hi, nullptr)) {
            for (i64 i = lo; i < hi; ++i) {
              if (team.cancellation_requested(ts, Team::kCancelLoop)) {
                esc = true;
                break;
              }
              done.fetch_add(1, std::memory_order_relaxed);
              if (ts.tid == round % 4 && i >= round) {
                esc = team.cancel_activate(ts, Team::kCancelLoop);
                break;
              }
            }
          }
          team.dispatch_break(ts);
          (void)zomp::barrier();
        },
        zomp::ParallelOptions{4});
    ASSERT_GE(done.load(), 1) << "round " << round;
  }
}

// -- End to end: cancel.mz through both backends -----------------------------

std::string read_kernel(const char* name) {
  const std::string path =
      std::string(ZOMP_SOURCE_DIR) + "/src/npb/kernels/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

interp::SliceVal make_slice_i64(std::int64_t n) {
  interp::SliceVal s;
  s.data = std::make_shared<std::vector<interp::Value>>(
      static_cast<std::size_t>(n), interp::Value(std::int64_t{0}));
  return s;
}

class CancelE2eTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    GlobalIcv::instance().set_cancellation(GetParam());
  }
  void TearDown() override { GlobalIcv::instance().set_cancellation(false); }
};

TEST_P(CancelE2eTest, CancelForDrainsInBothBackends) {
  const bool enabled = GetParam();
  constexpr std::int64_t n = 10000, trip = 5;

  // Native (transpiled at build time through mzc).
  std::vector<std::int64_t> marks(static_cast<std::size_t>(n), 0);
  const std::int64_t native = mzgen_cancel_mz::cancel_for_run(
      n, trip, mz::Slice<std::int64_t>{marks.data(), n});

  // Interpreted from the same source.
  auto result = core::compile_source(read_kernel("cancel.mz"),
                                     {true, "cancel_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  interp::Interp vm(*result.module);
  interp::SliceVal imarks = make_slice_i64(n);
  const interp::Value iv = vm.call_by_name(
      "cancel_for_run",
      {interp::Value(n), interp::Value(trip), interp::Value(imarks)});

  if (enabled) {
    // The trip iteration marked its slot before cancelling; the drain keeps
    // the total far below n (exact count depends on in-flight chunks).
    EXPECT_GE(native, 1);
    EXPECT_LT(native, n);
    EXPECT_GE(iv.as_i64(), 1);
    EXPECT_LT(iv.as_i64(), n);
  } else {
    EXPECT_EQ(native, n);
    EXPECT_EQ(iv.as_i64(), n);
  }
}

TEST_P(CancelE2eTest, CancelParallelIsDeterministicInBothBackends) {
  const bool enabled = GetParam();
  // out[0]*10 + out[1]: both members increment out[0], a barrier pins that,
  // then the cancel decides whether out[1] is ever touched.
  const std::int64_t want = enabled ? 20 : 22;

  std::vector<std::int64_t> out(2, 0);
  EXPECT_EQ(mzgen_cancel_mz::cancel_parallel_run(
                mz::Slice<std::int64_t>{out.data(), 2}),
            want);

  auto result = core::compile_source(read_kernel("cancel.mz"),
                                     {true, "cancel_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  interp::Interp vm(*result.module);
  interp::SliceVal iout = make_slice_i64(2);
  EXPECT_EQ(
      vm.call_by_name("cancel_parallel_run", {interp::Value(iout)}).as_i64(),
      want);
}

TEST_P(CancelE2eTest, CancelTaskgroupDiscardsInBothBackends) {
  const bool enabled = GetParam();
  constexpr std::int64_t n = 64;

  std::vector<std::int64_t> out(1, 0);
  const std::int64_t native = mzgen_cancel_mz::cancel_taskgroup_run(
      n, mz::Slice<std::int64_t>{out.data(), 1});

  auto result = core::compile_source(read_kernel("cancel.mz"),
                                     {true, "cancel_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  interp::Interp vm(*result.module);
  interp::SliceVal iout = make_slice_i64(1);
  const interp::Value iv = vm.call_by_name(
      "cancel_taskgroup_run", {interp::Value(n), interp::Value(iout)});

  if (enabled) {
    EXPECT_GE(native, 1);
    EXPECT_LT(native, n);
    EXPECT_GE(iv.as_i64(), 1);
    EXPECT_LT(iv.as_i64(), n);
  } else {
    EXPECT_EQ(native, n);
    EXPECT_EQ(iv.as_i64(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(IcvOnOff, CancelE2eTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CancellationEnabled"
                                             : "CancellationDisabled";
                         });

}  // namespace
}  // namespace zomp::rt
