// Tasking tests: deferral, taskwait, taskgroup, nesting, and barrier
// draining (the runtime's documented extension beyond the paper's scope).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/runtime.h"

namespace zomp {
namespace {

TEST(TaskTest, TasksRunByRegionEnd) {
  std::atomic<int> done{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < 200; ++i) {
            task([&] { done.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(done.load(), 200);
}

TEST(TaskTest, TaskwaitWaitsForChildrenOnly) {
  std::atomic<int> children_done{0};
  std::atomic<bool> waited_ok{false};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < 50; ++i) {
            task([&] { children_done.fetch_add(1); });
          }
          taskwait();
          waited_ok.store(children_done.load() == 50);
        });
      },
      ParallelOptions{4, true});
  EXPECT_TRUE(waited_ok.load());
}

TEST(TaskTest, NestedTasksCompleteViaBarrier) {
  std::atomic<int> grandchildren{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < 10; ++i) {
            task([&] {
              for (int j = 0; j < 10; ++j) {
                task([&] { grandchildren.fetch_add(1); });
              }
            });
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(grandchildren.load(), 100);
}

TEST(TaskTest, TaskwaitDoesNotWaitForGrandchildren) {
  // taskwait waits on *children*; a child that spawns a grandchild counts as
  // complete when its body (incl. its own child-wait in this runtime's
  // strict-completion model) finishes. We assert only that taskwait returns
  // and the counters are eventually consistent at region end.
  std::atomic<int> total{0};
  parallel(
      [&] {
        single([&] {
          task([&] {
            task([&] { total.fetch_add(1); });
          });
          taskwait();
        });
      },
      ParallelOptions{2, true});
  EXPECT_EQ(total.load(), 1);
}

TEST(TaskTest, TaskgroupWaitsForDescendants) {
  std::atomic<int> inside{0};
  std::atomic<bool> group_saw_all{false};
  parallel(
      [&] {
        single([&] {
          taskgroup([&] {
            for (int i = 0; i < 20; ++i) {
              task([&] {
                task([&] { inside.fetch_add(1); });  // descendant joins group
              });
            }
          });
          group_saw_all.store(inside.load() == 20);
        });
      },
      ParallelOptions{4, true});
  EXPECT_TRUE(group_saw_all.load());
}

TEST(TaskTest, SerialTeamRunsTasksInline) {
  // Outside any parallel region (team of one) tasks execute immediately.
  int done = 0;
  rt::ThreadState& ts = rt::current_thread();
  ts.team->task_create(ts, [&] { ++done; });
  EXPECT_EQ(done, 1);
}

TEST(TaskTest, UndeferredTaskRunsImmediately) {
  std::atomic<int> order{0};
  int at_creation = -1;
  parallel(
      [&] {
        single([&] {
          order.store(1);
          rt::ThreadState& ts = rt::current_thread();
          ts.team->task_create(
              ts, [&] { at_creation = order.load(); }, /*deferred=*/false);
          order.store(2);
        });
      },
      ParallelOptions{2, true});
  EXPECT_EQ(at_creation, 1) << "undeferred task must run at creation point";
}

TEST(TaskTest, AllMembersCanCreateTasks) {
  std::atomic<int> done{0};
  parallel(
      [&] {
        for (int i = 0; i < 25; ++i) {
          task([&] { done.fetch_add(1); });
        }
      },
      ParallelOptions{4, true});
  EXPECT_EQ(done.load(), 100);
}

TEST(TaskTest, TasksSeeFirstprivateStyleCaptures) {
  // Captured-by-value state must be stable even though the creating frame
  // has moved on by the time the task runs.
  std::atomic<long> sum{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < 100; ++i) {
            task([&sum, i] { sum.fetch_add(i); });
          }
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(sum.load(), 99L * 100 / 2);
}

TEST(TaskAbiTest, CAbiTaskCopiesArgument) {
  struct Payload {
    int value;
    std::atomic<int>* sink;
  };
  std::atomic<int> sink{0};
  parallel(
      [&] {
        single([&] {
          for (int i = 1; i <= 32; ++i) {
            Payload p{i, &sink};
            zomp_task(
                nullptr, 0,
                [](void* arg) {
                  auto* payload = static_cast<Payload*>(arg);
                  payload->sink->fetch_add(payload->value);
                },
                &p, sizeof p);
          }
          zomp_taskwait(nullptr, 0);
          EXPECT_EQ(sink.load(), 32 * 33 / 2);
        });
      },
      ParallelOptions{4, true});
}

TEST(TaskAbiTest, TaskgroupAbiCountsNestedDescendants) {
  // The generated-code route (zomp_taskgroup_begin/end) must propagate the
  // innermost live group to nested tasks exactly as hl.h's stack taskgroup
  // does — the reachability-asymmetry regression: a task spawned inside a
  // nested task inside the group IS counted before end returns.
  std::atomic<int> inside{0};
  std::atomic<bool> saw_all{false};
  parallel(
      [&] {
        single([&] {
          void* group = zomp_taskgroup_begin(nullptr, 0);
          for (int i = 0; i < 15; ++i) {
            task([&] {
              task([&] {
                task([&] { inside.fetch_add(1, std::memory_order_relaxed); });
              });
            });
          }
          zomp_taskgroup_end(nullptr, 0, group);
          saw_all.store(inside.load() == 15);
        });
      },
      ParallelOptions{4, true});
  EXPECT_TRUE(saw_all.load());
}

TEST(TaskAbiTest, TaskWithDepsAbiOrdersSiblings) {
  // An inout chain through the C ABI: strict serialisation, no locks.
  long acc = 0;
  parallel(
      [&] {
        single([&] {
          for (int i = 0; i < 50; ++i) {
            struct Payload {
              long* acc;
            } p{&acc};
            zomp_depend_t dep{&acc, 3 /* inout */};
            zomp_task_with_deps(
                nullptr, 0,
                [](void* arg) {
                  long* a = static_cast<Payload*>(arg)->acc;
                  *a = *a * 2 + 1;
                },
                &p, sizeof p, &dep, 1, /*flags=*/0, /*priority=*/0);
          }
          zomp_taskwait(nullptr, 0);
        });
      },
      ParallelOptions{4, true});
  long expect = 0;
  for (int i = 0; i < 50; ++i) expect = expect * 2 + 1;
  EXPECT_EQ(acc, expect);
}

TEST(TaskAbiTest, TaskloopAbiCoversRangeOnce) {
  std::vector<std::atomic<int>> hits(97);
  for (auto& h : hits) h.store(0);
  struct Payload {
    std::atomic<int>* hits;
  } p{hits.data()};
  parallel(
      [&] {
        single([&] {
          zomp_taskloop(
              nullptr, 0,
              [](std::int64_t lo, std::int64_t hi, void* arg) {
                auto* payload = static_cast<Payload*>(arg);
                for (std::int64_t i = lo; i < hi; ++i) {
                  payload->hits[i].fetch_add(1, std::memory_order_relaxed);
                }
              },
              &p, sizeof p, 0, 97, /*grainsize=*/5, /*num_tasks=*/0);
        });
      },
      ParallelOptions{4, true});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskTest, UndeferredTaskWithDepsWaitsForPredecessors) {
  // if(false) + depend: the encountering thread must block (helping) until
  // the predecessor completes, then run inline.
  long token = 0;
  bool saw = false;
  parallel(
      [&] {
        single([&] {
          task_depend({dep_out(&token)}, [&] { token = 99; });
          rt::ThreadState& ts = rt::current_thread();
          rt::DepSpec dep = dep_in(&token);
          rt::TaskOpts opts;
          opts.deps = &dep;
          opts.ndeps = 1;
          opts.deferred = false;  // if(false)
          ts.team->task_create_ex(ts, [&] { saw = token == 99; }, opts);
          EXPECT_TRUE(saw) << "undeferred task must run at creation";
        });
      },
      ParallelOptions{4, true});
  EXPECT_TRUE(saw);
}

TEST(TaskPoolTest, StealingFindsWorkAcrossQueues) {
  rt::TaskPool pool(4);
  int executed = 0;
  auto t = std::make_unique<rt::Task>();
  rt::TaskContext parent;
  t->body = [&] { ++executed; };
  t->parent = &parent;
  EXPECT_EQ(pool.push(/*tid=*/0, std::move(t)), nullptr)
      << "push below capacity must not reject";
  EXPECT_EQ(pool.outstanding(), 1);
  // A different member steals it.
  auto stolen = pool.take(/*tid=*/3);
  ASSERT_NE(stolen, nullptr);
  stolen->body();
  pool.mark_finished();
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(pool.outstanding(), 0);
  EXPECT_EQ(pool.take(1), nullptr);
}

}  // namespace
}  // namespace zomp
