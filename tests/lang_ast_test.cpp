// AST utility tests: the Type value API, symbol arena, deep cloning, and the
// dump format the golden tests depend on.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "lang/clone.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace zomp::lang {
namespace {

TEST(TypeTest, PredicatesAndSpellings) {
  EXPECT_TRUE(Type::i64().is_i64());
  EXPECT_TRUE(Type::i64().is_numeric());
  EXPECT_TRUE(Type::f64().is_f64());
  EXPECT_FALSE(Type::f64().is_i64());
  EXPECT_TRUE(Type::boolean().is_bool());
  EXPECT_TRUE(Type::void_type().is_void());
  EXPECT_TRUE(Type::invalid().is_invalid());
  EXPECT_TRUE(Type::inferred().is_inferred());
  EXPECT_TRUE(Type::slice_of(ScalarKind::kF64).is_slice());
  EXPECT_TRUE(Type::pointer_to(ScalarKind::kI64).is_pointer());

  EXPECT_EQ(Type::i64().to_string(), "i64");
  EXPECT_EQ(Type::slice_of(ScalarKind::kF64).to_string(), "[]f64");
  EXPECT_EQ(Type::pointer_to(ScalarKind::kBool).to_string(), "*bool");
}

TEST(TypeTest, ElementTypeOfCompound) {
  EXPECT_EQ(Type::slice_of(ScalarKind::kF64).element(), Type::f64());
  EXPECT_EQ(Type::pointer_to(ScalarKind::kI64).element(), Type::i64());
}

TEST(TypeTest, Equality) {
  EXPECT_EQ(Type::i64(), Type::i64());
  EXPECT_NE(Type::i64(), Type::f64());
  EXPECT_NE(Type::slice_of(ScalarKind::kF64), Type::pointer_to(ScalarKind::kF64));
  EXPECT_NE(Type::slice_of(ScalarKind::kF64), Type::slice_of(ScalarKind::kI64));
}

TEST(SymbolTest, ArenaAssignsDenseIds) {
  Module module;
  Symbol* a = module.new_symbol("a", Symbol::Kind::kLocal, Type::i64(), false);
  Symbol* b = module.new_symbol("b", Symbol::Kind::kParam, Type::f64(), true);
  EXPECT_EQ(a->id, 0);
  EXPECT_EQ(b->id, 1);
  EXPECT_TRUE(b->is_const);
  EXPECT_EQ(module.symbols.size(), 2u);
}

TEST(ModuleTest, FindFunction) {
  Module module;
  auto fn = std::make_unique<FnDecl>();
  fn->name = "target";
  module.functions.push_back(std::move(fn));
  EXPECT_NE(module.find_function("target"), nullptr);
  EXPECT_EQ(module.find_function("missing"), nullptr);
  const Module& cmod = module;
  EXPECT_NE(cmod.find_function("target"), nullptr);
}

std::unique_ptr<Module> parse(const std::string& text) {
  SourceFile file("clone.mz", text);
  Diagnostics diags;
  Lexer lexer(file, diags);
  Parser parser(lexer.lex(), diags);
  auto module = parser.parse_module("clone");
  EXPECT_FALSE(diags.has_errors()) << diags.render(file);
  return module;
}

TEST(CloneTest, ExpressionDeepCopyIsIndependent) {
  auto module = parse("fn f(a: i64) i64 { return a * 2 + 1; }");
  const Stmt& ret = *module->functions[0]->body->stmts[0];
  ExprPtr copy = clone_expr(*ret.expr);
  EXPECT_EQ(dump_expr(*copy), dump_expr(*ret.expr));
  // Mutating the clone must not affect the original.
  copy->args[0]->args[1]->int_value = 99;
  EXPECT_NE(dump_expr(*copy), dump_expr(*ret.expr));
}

TEST(CloneTest, StatementDeepCopyCoversControlFlow) {
  auto module = parse(R"(
fn f(n: i64) i64 {
  var s: i64 = 0;
  for (0..n) |i| {
    if (i > 2) {
      s += i;
    } else {
      s -= 1;
    }
  }
  while (s > 100) : (s -= 10) {
    s -= 1;
  }
  return s;
}
)");
  const Stmt& body = *module->functions[0]->body;
  StmtPtr copy = clone_stmt(body);
  EXPECT_EQ(dump_stmt(*copy), dump_stmt(body));
}

TEST(CloneTest, PendingDirectivesAreCopied) {
  auto module = parse(R"(
fn f(n: i64) void {
  //#omp parallel for schedule(static, 2)
  for (0..n) |i| {
  }
}
)");
  const Stmt& loop = *module->functions[0]->body->stmts[0];
  StmtPtr copy = clone_stmt(loop);
  ASSERT_EQ(copy->pending_directives.size(), 1u);
  EXPECT_EQ(copy->pending_directives[0].first, " parallel for schedule(static, 2)");
}

TEST(DumpTest, StableShapeForGoldenTests) {
  auto module = parse("fn f(a: i64, x: []f64) f64 { return x[a]; }");
  const std::string out = dump_ast(*module);
  EXPECT_EQ(out,
            "(module clone\n"
            "  (fn f (a:i64 x:[]f64) f64\n"
            "    (block\n"
            "      (return (index x a))\n"
            "    )\n"
            "  )\n"
            ")\n");
}

TEST(DumpTest, ReduceOpSpellings) {
  EXPECT_STREQ(reduce_op_spelling(ReduceOp::kAdd), "+");
  EXPECT_STREQ(reduce_op_spelling(ReduceOp::kMul), "*");
  EXPECT_STREQ(reduce_op_spelling(ReduceOp::kMin), "min");
  EXPECT_STREQ(reduce_op_spelling(ReduceOp::kMax), "max");
  EXPECT_STREQ(reduce_op_spelling(ReduceOp::kBitAnd), "&");
  EXPECT_STREQ(reduce_op_spelling(ReduceOp::kLogOr), "or");
}

}  // namespace
}  // namespace zomp::lang
