// -O0 vs -O1 equivalence: the optimizer pipeline (fold, static-spec, fuse,
// dce-hoist — core/passes.h) must be invisible to results. Every kernel in
// src/npb/kernels is run four ways — interpreted at opt_level 0 and 1, and
// natively through the build-time -O0 (<kernel>_mz_o0) and default -O1
// (<kernel>_mz) transpiles — across {1, 2, 4, 8} threads, and all four must
// agree (with the serial host oracle pinning the integer kernels). Float
// kernels are compared within one backend (interp-vs-interp and
// native-vs-native are bit-exact by construction; interp-vs-native f64 sums
// are the province of backend_equivalence_test).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cg_mz.h"
#include "cg_mz_o0.h"
#include "core/pipeline.h"
#include "ep_mz.h"
#include "ep_mz_o0.h"
#include "interp/interp.h"
#include "is_mz.h"
#include "is_mz_o0.h"
#include "mandel_mz.h"
#include "mandel_mz_o0.h"
#include "npb/cg.h"
#include "npb/ep.h"
#include "npb/is.h"
#include "npb/mandel.h"
#include "reduce_matrix_mz.h"
#include "reduce_matrix_mz_o0.h"
#include "runtime/api.h"
#include "taskgraph_mz.h"
#include "taskgraph_mz_o0.h"

#ifndef ZOMP_SOURCE_DIR
#define ZOMP_SOURCE_DIR "."
#endif

namespace zomp::interp {
namespace {

std::string read_kernel(const char* name) {
  const std::string path =
      std::string(ZOMP_SOURCE_DIR) + "/src/npb/kernels/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Compiles `kernel` at the given opt level (the library default is 0; mzc's
/// command-line default is 1 — this sweep pins both).
core::CompileResult compile_kernel(const char* kernel, int opt_level) {
  core::CompileOptions options;
  options.module_name = std::string("opt_equiv_o") + std::to_string(opt_level);
  options.opt_level = opt_level;
  return core::compile_source(read_kernel(kernel), options);
}

SliceVal make_slice_i64(std::int64_t n, std::int64_t fill = 0) {
  SliceVal s;
  s.data = std::make_shared<std::vector<Value>>(static_cast<std::size_t>(n),
                                                Value(fill));
  return s;
}

SliceVal make_slice_f64(std::int64_t n) {
  SliceVal s;
  s.data = std::make_shared<std::vector<Value>>(static_cast<std::size_t>(n),
                                                Value(0.0));
  return s;
}

std::vector<std::int64_t> to_i64(const SliceVal& s) {
  std::vector<std::int64_t> out;
  out.reserve(s.data->size());
  for (const Value& v : *s.data) out.push_back(v.as_i64());
  return out;
}

std::vector<double> to_f64(const SliceVal& s) {
  std::vector<double> out;
  out.reserve(s.data->size());
  for (const Value& v : *s.data) out.push_back(v.as_f64());
  return out;
}

template <typename T>
mz::Slice<T> slice_of(std::vector<T>& v) {
  return mz::Slice<T>{v.data(), static_cast<std::int64_t>(v.size())};
}

class OptLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptLevelSweep, MandelAgreesAcrossOptLevels) {
  const int threads = GetParam();
  constexpr std::int64_t w = 40, h = 40, iters = 150;
  zomp::set_num_threads(threads);

  std::vector<std::int64_t> interp_out[2];
  for (int level = 0; level <= 1; ++level) {
    auto compiled = compile_kernel("mandel.mz", level);
    ASSERT_TRUE(compiled.ok) << compiled.diagnostics_text();
    Interp interp(*compiled.module);
    SliceVal res = make_slice_i64(2);
    interp.call_by_name("mandel_run",
                        {Value(w), Value(h), Value(iters), Value(res)});
    interp_out[level] = to_i64(res);
  }
  EXPECT_EQ(interp_out[0], interp_out[1]) << threads << " threads";

  std::vector<std::int64_t> n0(2, 0), n1(2, 0);
  mzgen_mandel_mz_o0::mandel_run(w, h, iters, slice_of(n0));
  mzgen_mandel_mz::mandel_run(w, h, iters, slice_of(n1));
  EXPECT_EQ(n0, n1) << threads << " threads";
  EXPECT_EQ(interp_out[0], n1) << threads << " threads";

  const zomp::npb::MandelResult serial =
      zomp::npb::mandel_serial({w, h, iters});
  EXPECT_EQ(n1[0], serial.inside);
  EXPECT_EQ(static_cast<std::uint64_t>(n1[1]), serial.iter_checksum);
}

TEST_P(OptLevelSweep, IsAgreesAcrossOptLevels) {
  const int threads = GetParam();
  const zomp::npb::IsClass cls = zomp::npb::is_class('m');
  const auto keys0 = zomp::npb::is_make_keys(cls.total_keys, cls.max_key);
  const std::int64_t oracle =
      zomp::npb::is_rank_checksum_mod(keys0, cls.max_key, cls.iterations);
  zomp::set_num_threads(threads);

  std::int64_t interp_sum[2] = {0, 0};
  for (int level = 0; level <= 1; ++level) {
    auto compiled = compile_kernel("is.mz", level);
    ASSERT_TRUE(compiled.ok) << compiled.diagnostics_text();
    Interp interp(*compiled.module);
    SliceVal keys = make_slice_i64(cls.total_keys);
    for (std::int64_t i = 0; i < cls.total_keys; ++i) {
      (*keys.data)[static_cast<std::size_t>(i)] =
          Value(keys0[static_cast<std::size_t>(i)]);
    }
    SliceVal count = make_slice_i64(cls.max_key);
    SliceVal hist = make_slice_i64(cls.max_key * threads);
    interp_sum[level] =
        interp
            .call_by_name("is_run",
                          {Value(keys), Value(cls.max_key),
                           Value(static_cast<std::int64_t>(cls.iterations)),
                           Value(count), Value(hist)})
            .as_i64();
  }
  EXPECT_EQ(interp_sum[0], interp_sum[1]) << threads << " threads";

  std::int64_t native_sum[2] = {0, 0};
  for (int level = 0; level <= 1; ++level) {
    std::vector<std::int64_t> nkeys = keys0;
    std::vector<std::int64_t> ncount(static_cast<std::size_t>(cls.max_key));
    std::vector<std::int64_t> nhist(
        static_cast<std::size_t>(cls.max_key * threads));
    native_sum[level] =
        level == 0 ? mzgen_is_mz_o0::is_run(slice_of(nkeys), cls.max_key,
                                            cls.iterations, slice_of(ncount),
                                            slice_of(nhist))
                   : mzgen_is_mz::is_run(slice_of(nkeys), cls.max_key,
                                         cls.iterations, slice_of(ncount),
                                         slice_of(nhist));
  }
  EXPECT_EQ(native_sum[0], native_sum[1]) << threads << " threads";
  EXPECT_EQ(interp_sum[0], native_sum[1]) << threads << " threads";
  EXPECT_EQ(native_sum[1], oracle) << threads << " threads";
}

TEST_P(OptLevelSweep, EpAgreesAcrossOptLevels) {
  const int threads = GetParam();
  zomp::set_num_threads(threads);

  // ep_run fixes 2^16 pairs per block, far too many to interpret — the
  // interpreted O0-vs-O1 comparison runs on the kernel's arithmetic core
  // instead (randlc seed-chain + ipow46), which the fold pass does visit.
  double interp_chain[2];
  for (int level = 0; level <= 1; ++level) {
    auto compiled = compile_kernel("ep.mz", level);
    ASSERT_TRUE(compiled.ok) << compiled.diagnostics_text();
    Interp interp(*compiled.module);
    double x = 0.0;
    for (const std::int64_t k : {1, 7, 381, 1000}) {
      x += interp.call_by_name("ipow46", {Value(1220703125.0), Value(k)})
               .as_f64();
    }
    interp_chain[level] = x;
  }
  EXPECT_EQ(interp_chain[0], interp_chain[1]) << threads << " threads";

  // Native at the class the gen tests use; both transpiles of the same
  // kernel share codegen flags, so the sums must match bit for bit.
  constexpr std::int64_t m_native = 18;  // 4 blocks of parallel work
  std::vector<double> q0(10, 0.0), res0(3, 0.0), q1(10, 0.0), res1(3, 0.0);
  mzgen_ep_mz_o0::ep_run(m_native, slice_of(q0), slice_of(res0));
  mzgen_ep_mz::ep_run(m_native, slice_of(q1), slice_of(res1));
  EXPECT_EQ(q0, q1) << threads << " threads";
  EXPECT_EQ(res0, res1) << threads << " threads";

  const zomp::npb::EpResult expect = zomp::npb::ep_serial(m_native);
  EXPECT_NEAR(res1[0], expect.sx, 1e-7);
  EXPECT_NEAR(res1[1], expect.sy, 1e-7);
  EXPECT_EQ(static_cast<std::int64_t>(res1[2]), expect.pairs_in_disc);
}

TEST_P(OptLevelSweep, CgAgreesAcrossOptLevels) {
  const int threads = GetParam();
  const zomp::npb::CgClass cls = zomp::npb::cg_class('m');
  zomp::npb::SparseMatrix a = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  zomp::set_num_threads(threads);

  std::vector<double> x(static_cast<std::size_t>(a.n)), z(x), r(x), p(x), q(x);
  std::vector<double> rnorm0(1, 0.0), rnorm1(1, 0.0);
  const double zeta0 = mzgen_cg_mz_o0::cg_run(
      slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values), slice_of(x),
      slice_of(z), slice_of(r), slice_of(p), slice_of(q), cls.niter, cls.shift,
      slice_of(rnorm0));
  const double zeta1 = mzgen_cg_mz::cg_run(
      slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values), slice_of(x),
      slice_of(z), slice_of(r), slice_of(p), slice_of(q), cls.niter, cls.shift,
      slice_of(rnorm1));
  // Same backend, same team size, same reduction tree: bit-exact.
  EXPECT_EQ(zeta0, zeta1) << threads << " threads";
  EXPECT_EQ(rnorm0[0], rnorm1[0]) << threads << " threads";
}

TEST_P(OptLevelSweep, ReduceMatrixAgreesAcrossOptLevels) {
  const int threads = GetParam();
  constexpr std::int64_t n = 41, h = 9, w = 7, a3 = 7, b3 = 5, c3 = 4;
  zomp::set_num_threads(threads);

  struct Out {
    std::vector<std::int64_t> ops, c2, c3, sa, mi, ms;
    std::vector<double> f64s, mf;
  };
  Out interp_out[2];
  for (int level = 0; level <= 1; ++level) {
    auto compiled = compile_kernel("reduce_matrix.mz", level);
    ASSERT_TRUE(compiled.ok) << compiled.diagnostics_text();
    Interp interp(*compiled.module);
    Out& o = interp_out[level];

    SliceVal ops = make_slice_i64(10);
    interp.call_by_name("red_ops_run", {Value(n), Value(ops)});
    o.ops = to_i64(ops);

    SliceVal f64s = make_slice_f64(4);
    interp.call_by_name("red_f64_run", {Value(n), Value(f64s)});
    o.f64s = to_f64(f64s);

    SliceVal c2 = make_slice_i64(1);
    interp.call_by_name("collapse2_run", {Value(h), Value(w), Value(c2)});
    o.c2 = to_i64(c2);

    SliceVal c3out = make_slice_i64(2);
    interp.call_by_name("collapse3_run",
                        {Value(a3), Value(b3), Value(c3), Value(c3out)});
    o.c3 = to_i64(c3out);

    SliceVal sa = make_slice_i64(2);
    interp.call_by_name("standalone_run", {Value(n), Value(w), Value(sa)});
    o.sa = to_i64(sa);

    SliceVal mi = make_slice_i64(3);
    SliceVal mf = make_slice_f64(1);
    interp.call_by_name("multi_red_run", {Value(n), Value(mi), Value(mf)});
    o.mi = to_i64(mi);
    o.mf = to_f64(mf);

    SliceVal ms = make_slice_i64(3);
    interp.call_by_name("multi_red_standalone_run", {Value(n), Value(ms)});
    o.ms = to_i64(ms);
  }
  EXPECT_EQ(interp_out[0].ops, interp_out[1].ops) << threads << " threads";
  EXPECT_EQ(interp_out[0].f64s, interp_out[1].f64s) << threads << " threads";
  EXPECT_EQ(interp_out[0].c2, interp_out[1].c2) << threads << " threads";
  EXPECT_EQ(interp_out[0].c3, interp_out[1].c3) << threads << " threads";
  EXPECT_EQ(interp_out[0].sa, interp_out[1].sa) << threads << " threads";
  EXPECT_EQ(interp_out[0].mi, interp_out[1].mi) << threads << " threads";
  EXPECT_EQ(interp_out[0].mf, interp_out[1].mf) << threads << " threads";
  EXPECT_EQ(interp_out[0].ms, interp_out[1].ms) << threads << " threads";

  // The native pair, across every entry point.
  {
    std::vector<std::int64_t> ops0(10, 0), ops1(10, 0);
    mzgen_reduce_matrix_mz_o0::red_ops_run(n, slice_of(ops0));
    mzgen_reduce_matrix_mz::red_ops_run(n, slice_of(ops1));
    EXPECT_EQ(ops0, ops1) << threads << " threads";
    EXPECT_EQ(interp_out[0].ops, ops1) << threads << " threads";

    std::vector<double> f0(4, 0.0), f1(4, 0.0);
    mzgen_reduce_matrix_mz_o0::red_f64_run(n, slice_of(f0));
    mzgen_reduce_matrix_mz::red_f64_run(n, slice_of(f1));
    EXPECT_EQ(f0, f1) << threads << " threads";

    std::vector<std::int64_t> c20(1, 0), c21(1, 0);
    mzgen_reduce_matrix_mz_o0::collapse2_run(h, w, slice_of(c20));
    mzgen_reduce_matrix_mz::collapse2_run(h, w, slice_of(c21));
    EXPECT_EQ(c20, c21) << threads << " threads";
    EXPECT_EQ(interp_out[0].c2, c21) << threads << " threads";

    std::vector<std::int64_t> c30(2, 0), c31(2, 0);
    mzgen_reduce_matrix_mz_o0::collapse3_run(a3, b3, c3, slice_of(c30));
    mzgen_reduce_matrix_mz::collapse3_run(a3, b3, c3, slice_of(c31));
    EXPECT_EQ(c30, c31) << threads << " threads";

    std::vector<std::int64_t> sa0(2, 0), sa1(2, 0);
    mzgen_reduce_matrix_mz_o0::standalone_run(n, w, slice_of(sa0));
    mzgen_reduce_matrix_mz::standalone_run(n, w, slice_of(sa1));
    EXPECT_EQ(sa0, sa1) << threads << " threads";
    EXPECT_EQ(interp_out[0].sa, sa1) << threads << " threads";

    std::vector<std::int64_t> mi0(3, 0), mi1(3, 0);
    std::vector<double> mf0(1, 0.0), mf1(1, 0.0);
    mzgen_reduce_matrix_mz_o0::multi_red_run(n, slice_of(mi0), slice_of(mf0));
    mzgen_reduce_matrix_mz::multi_red_run(n, slice_of(mi1), slice_of(mf1));
    EXPECT_EQ(mi0, mi1) << threads << " threads";
    EXPECT_EQ(mf0, mf1) << threads << " threads";
    EXPECT_EQ(interp_out[0].mi, mi1) << threads << " threads";

    std::vector<std::int64_t> ms0(3, 0), ms1(3, 0);
    mzgen_reduce_matrix_mz_o0::multi_red_standalone_run(n, slice_of(ms0));
    mzgen_reduce_matrix_mz::multi_red_standalone_run(n, slice_of(ms1));
    EXPECT_EQ(ms0, ms1) << threads << " threads";
    EXPECT_EQ(interp_out[0].ms, ms1) << threads << " threads";
  }
}

TEST_P(OptLevelSweep, TaskgraphAgreesAcrossOptLevels) {
  const int threads = GetParam();
  zomp::set_num_threads(threads);

  constexpr std::int64_t nb = 5, bs = 8, nwf = nb * bs;
  std::vector<std::int64_t> bvec(nwf);
  for (std::int64_t i = 0; i < nwf; ++i) bvec[i] = (i * 17 % 23) - 11;

  std::int64_t interp_sums[2][4];
  for (int level = 0; level <= 1; ++level) {
    auto compiled = compile_kernel("taskgraph.mz", level);
    ASSERT_TRUE(compiled.ok) << compiled.diagnostics_text();
    Interp interp(*compiled.module);

    SliceVal ib = make_slice_i64(nwf);
    for (std::int64_t i = 0; i < nwf; ++i) {
      (*ib.data)[static_cast<std::size_t>(i)] =
          Value(bvec[static_cast<std::size_t>(i)]);
    }
    SliceVal ix = make_slice_i64(nwf);
    interp_sums[level][0] =
        interp
            .call_by_name("wavefront_run",
                          {Value(nb), Value(bs), Value(ib), Value(ix)})
            .as_i64();

    SliceVal tl = make_slice_i64(53);
    interp_sums[level][1] =
        interp
            .call_by_name("taskloop_run",
                          {Value(std::int64_t{53}), Value(std::int64_t{3}),
                           Value(std::int64_t{7}), Value(tl)})
            .as_i64();

    SliceVal tg = make_slice_i64(2);
    interp_sums[level][2] =
        interp.call_by_name("taskgroup_run", {Value(std::int64_t{20}),
                                              Value(tg)})
            .as_i64();

    SliceVal cl = make_slice_i64(2);
    interp_sums[level][3] =
        interp.call_by_name("clauses_run", {Value(std::int64_t{5}), Value(cl)})
            .as_i64();
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(interp_sums[0][k], interp_sums[1][k])
        << "driver " << k << " at " << threads << " threads";
  }

  std::int64_t native_sums[2][4];
  for (int level = 0; level <= 1; ++level) {
    std::vector<std::int64_t> b = bvec, xs(nwf, 0), tl(53, 0), tg(2, 0),
                              cl(2, 0);
    if (level == 0) {
      native_sums[level][0] =
          mzgen_taskgraph_mz_o0::wavefront_run(nb, bs, slice_of(b),
                                               slice_of(xs));
      native_sums[level][1] =
          mzgen_taskgraph_mz_o0::taskloop_run(53, 3, 7, slice_of(tl));
      native_sums[level][2] = mzgen_taskgraph_mz_o0::taskgroup_run(
          20, slice_of(tg));
      native_sums[level][3] = mzgen_taskgraph_mz_o0::clauses_run(
          5, slice_of(cl));
    } else {
      native_sums[level][0] =
          mzgen_taskgraph_mz::wavefront_run(nb, bs, slice_of(b), slice_of(xs));
      native_sums[level][1] =
          mzgen_taskgraph_mz::taskloop_run(53, 3, 7, slice_of(tl));
      native_sums[level][2] = mzgen_taskgraph_mz::taskgroup_run(20,
                                                                slice_of(tg));
      native_sums[level][3] = mzgen_taskgraph_mz::clauses_run(5, slice_of(cl));
    }
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(native_sums[0][k], native_sums[1][k])
        << "driver " << k << " at " << threads << " threads";
    EXPECT_EQ(interp_sums[0][k], native_sums[1][k])
        << "driver " << k << " at " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, OptLevelSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace zomp::interp
