// Code generator tests: the emitted C++ must target the zomp ABI with the
// documented shapes (fork + void** trampoline, static-init bounds,
// dispatch-next loops), honour the safety flag, and expose pub functions.
#include <gtest/gtest.h>

#include <string>

#include "codegen/codegen.h"
#include "core/pipeline.h"

namespace zomp::codegen {
namespace {

std::string gen(const std::string& source, CodegenOptions options = {}) {
  auto result = core::compile_source(source, {true, "g"});
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
  if (!result.ok) return "";
  return emit_cpp(*result.module, options);
}

TEST(CppTypeTest, Spellings) {
  EXPECT_EQ(cpp_type(lang::Type::i64()), "std::int64_t");
  EXPECT_EQ(cpp_type(lang::Type::f64()), "double");
  EXPECT_EQ(cpp_type(lang::Type::boolean()), "bool");
  EXPECT_EQ(cpp_type(lang::Type::void_type()), "void");
  EXPECT_EQ(cpp_type(lang::Type::slice_of(lang::ScalarKind::kF64)),
            "mz::Slice<double>");
  EXPECT_EQ(cpp_type(lang::Type::pointer_to(lang::ScalarKind::kI64)),
            "std::int64_t*");
}

TEST(CodegenTest, ForkEmitsArgsArrayAndTrampoline) {
  const std::string cpp = gen(R"(
fn f() void {
  var total: i64 = 0;
  //#omp parallel
  {
    total += 1;
  }
}
)");
  EXPECT_NE(cpp.find("zomp_fork_call("), std::string::npos);
  EXPECT_NE(cpp.find("_mt(std::int32_t __gtid, std::int32_t __tid, void** __args)"),
            std::string::npos);
  // Shared scalar: reference parameter, address in the args array.
  EXPECT_NE(cpp.find("std::int64_t&"), std::string::npos);
  EXPECT_NE(cpp.find("(void*)&total_"), std::string::npos);
}

TEST(CodegenTest, StaticScheduleUsesStaticInit) {
  const std::string cpp = gen(R"(
fn f(x: []f64) void {
  const n: i64 = x.len;
  //#omp parallel for schedule(static)
  for (0..n) |i| {
    x[i] = 0.0;
  }
}
)");
  EXPECT_NE(cpp.find("zomp_for_static_init("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_for_static_fini("), std::string::npos);
  EXPECT_EQ(cpp.find("zomp_dispatch_init("), std::string::npos);
}

TEST(CodegenTest, DynamicScheduleUsesDispatch) {
  const std::string cpp = gen(R"(
fn f(x: []f64) void {
  const n: i64 = x.len;
  //#omp parallel for schedule(dynamic, 4)
  for (0..n) |i| {
    x[i] = 0.0;
  }
}
)");
  EXPECT_NE(cpp.find("zomp_dispatch_init("), std::string::npos);
  EXPECT_NE(cpp.find("while (zomp_dispatch_next("), std::string::npos);
}

TEST(CodegenTest, OrderedLoopForcedThroughDispatch) {
  const std::string cpp = gen(R"(
fn f(x: []f64) void {
  const n: i64 = x.len;
  //#omp parallel for ordered schedule(static)
  for (0..n) |i| {
    //#omp ordered
    {
      x[i] = 1.0;
    }
  }
}
)");
  EXPECT_NE(cpp.find("zomp_dispatch_init("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_ordered("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_end_ordered("), std::string::npos);
}

TEST(CodegenTest, ReductionEmitsIdentityAndTreeCombine) {
  const std::string cpp = gen(R"(
fn f(n: i64) f64 {
  var s: f64 = 0.0;
  //#omp parallel for reduction(min: s)
  for (0..n) |i| {
    s = @min(s, @floatFromInt(i));
  }
  return s;
}
)");
  EXPECT_NE(cpp.find("std::numeric_limits<double>::infinity()"),
            std::string::npos);
  // Tree rendezvous: a static combine fn + winner-only fold into the target.
  EXPECT_NE(cpp.find("if (zomp_reduce("), std::string::npos);
  EXPECT_NE(cpp.find("mz::mz_min("), std::string::npos);
  EXPECT_EQ(cpp.find("zomp_reduce_enter("), std::string::npos)
      << "global-critical reduction protocol must be retired";
}

TEST(CodegenTest, MultiVarReductionPacksIntoOneRendezvous) {
  // Two reduction clauses on one construct: the partials pack into a single
  // struct payload and ONE zomp_reduce call, not one per variable.
  const std::string cpp = gen(R"(
fn f(n: i64) f64 {
  var s: f64 = 0.0;
  var m: i64 = -100000;
  //#omp parallel for reduction(+: s) reduction(max: m)
  for (0..n) |i| {
    s += @floatFromInt(i);
    m = @max(m, @mod(i * 13, 97));
  }
  return s + @floatFromInt(m);
}
)");
  std::size_t count = 0;
  for (std::size_t at = cpp.find("zomp_reduce("); at != std::string::npos;
       at = cpp.find("zomp_reduce(", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << "expected exactly one packed rendezvous:\n" << cpp;
  EXPECT_NE(cpp.find("__redpack_"), std::string::npos) << cpp;
}

TEST(CodegenTest, CollapseEmitsOdometerAdvance) {
  // The div/mod de-linearization seeds the ivs once per chunk; inside the
  // chunk the ivs advance by increment-and-carry in the loop's iteration
  // clause (so `continue` cannot skip it).
  const std::string cpp = gen(R"(
fn f(h: i64, w: i64, x: []f64) void {
  //#omp parallel for collapse(2) schedule(dynamic, 1)
  for (0..h) |i| {
    for (0..w) |j| {
      x[i * w + j] = 1.0;
    }
  }
}
)");
  // Seed keeps the div/mod form (chunk entry)...
  EXPECT_NE(cpp.find("/ __omp_c0_d0_s"), std::string::npos) << cpp;
  // ...and the iteration clause carries the inner iv with a wrap test
  // against lo + extent.
  EXPECT_NE(cpp.find("!= __omp_c0_d1_lo"), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("+ __omp_c0_d1_n"), std::string::npos) << cpp;
}

TEST(CodegenTest, CollapseEmitsLinearizedLoopWithDelinearization) {
  const std::string cpp = gen(R"(
fn f(h: i64, w: i64, x: []f64) void {
  //#omp parallel for collapse(2) schedule(dynamic, 1)
  for (0..h) |i| {
    for (0..w) |j| {
      x[i * w + j] = 1.0;
    }
  }
}
)");
  // One dispatch loop over the linearized total...
  EXPECT_NE(cpp.find("__omp_c0_total"), std::string::npos);
  EXPECT_NE(cpp.find("zomp_dispatch_init("), std::string::npos);
  // ...with per-iteration recomputation of both induction variables: the
  // outer one divides by its stride, the inner one also takes the modulo.
  EXPECT_NE(cpp.find("/ __omp_c0_d0_s"), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("% __omp_c0_d1_n"), std::string::npos) << cpp;
}

TEST(CodegenTest, LastprivateCopyDoesNotReadSharedVariable) {
  // The private copy's init is a type hint: evaluating it would race the
  // lastprivate writeback of a nowait loop.
  const std::string cpp = gen(R"(
fn f(n: i64) i64 {
  var last: i64 = 0;
  //#omp parallel for lastprivate(last)
  for (0..n) |i| {
    last = i;
  }
  return last;
}
)");
  const auto decl = cpp.find("std::int64_t last__lp");
  ASSERT_NE(decl, std::string::npos);
  EXPECT_NE(cpp.find("= {};", decl), std::string::npos)
      << "private copy must value-initialize, not read the shared variable";
}

TEST(CodegenTest, SinglesCriticalsMastersBarriers) {
  const std::string cpp = gen(R"(
fn f() void {
  var t: i64 = 0;
  //#omp parallel
  {
    //#omp single
    {
      t += 1;
    }
    //#omp critical(name)
    {
      t += 1;
    }
    //#omp master
    {
      t += 1;
    }
    //#omp barrier
  }
}
)");
  EXPECT_NE(cpp.find("if (zomp_single("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_end_single("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_critical("), std::string::npos);
  EXPECT_NE(cpp.find("\"name\""), std::string::npos);
  EXPECT_NE(cpp.find("if (zomp_master("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_barrier("), std::string::npos);
}

TEST(CodegenTest, AtomicMapsToTypedEntryPoint) {
  const std::string cpp = gen(R"(
fn f(x: []f64, c: []i64) void {
  //#omp parallel
  {
    //#omp atomic
    x[0] += 1.5;
    //#omp atomic
    c[0] += 2;
  }
}
)");
  EXPECT_NE(cpp.find("zomp_atomic_add_f64(&("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_atomic_add_i64(&("), std::string::npos);
}

TEST(CodegenTest, TaskEmitsPackAndThunk) {
  const std::string cpp = gen(R"(
fn f(v: i64) void {
  //#omp parallel
  {
    //#omp task
    {
      var w: i64 = v + 1;
      w += 1;
    }
    //#omp taskwait
  }
}
)");
  EXPECT_NE(cpp.find("zomp_task("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_taskwait("), std::string::npos);
  EXPECT_NE(cpp.find("sizeof("), std::string::npos);
}

TEST(CodegenTest, SafetyFlagEmitsDefine) {
  const std::string source = R"(
fn f(x: []f64) f64 { return x[0]; }
)";
  CodegenOptions safe;
  safe.safety_checks = true;
  EXPECT_NE(gen(source, safe).find("#define ZOMP_MZ_SAFE 1"),
            std::string::npos);
  EXPECT_EQ(gen(source).find("#define ZOMP_MZ_SAFE"), std::string::npos);
}

TEST(CodegenTest, PubFunctionsHaveExternalLinkage) {
  const std::string cpp = gen(R"(
pub fn api(x: []f64) f64 { return x[0]; }
fn internal() void {}
)");
  EXPECT_NE(cpp.find("double api(mz::Slice<double>"), std::string::npos);
  EXPECT_NE(cpp.find("static void internal()"), std::string::npos);
}

TEST(CodegenTest, ExternFunctionsDeclaredWithCLinkage) {
  const std::string cpp = gen(R"(
extern fn cg_solve_(n: *i64, x: *f64) void;
fn f() void {
  var n: i64 = 3;
  var v: f64 = 0.0;
  cg_solve_(&n, &v);
}
)");
  EXPECT_NE(cpp.find("extern \"C\""), std::string::npos);
  EXPECT_NE(cpp.find("void cg_solve_(std::int64_t*, double*);"),
            std::string::npos);
}

TEST(CodegenTest, WhileContinueExpressionBecomesForStep) {
  const std::string cpp = gen(R"(
fn f(n: i64) i64 {
  var i: i64 = 0;
  var s: i64 = 0;
  while (i < n) : (i += 2) {
    if (i == 4) { continue; }
    s += i;
  }
  return s;
}
)");
  // `continue` must still run the step: emitted as a for statement.
  EXPECT_NE(cpp.find("for (; "), std::string::npos);
  EXPECT_NE(cpp.find("+= INT64_C(2))"), std::string::npos);
}

TEST(CodegenTest, EmitMainWrapsPubMain) {
  CodegenOptions with_main;
  with_main.emit_main = true;
  const std::string cpp = gen("pub fn main() void { @print(1); }", with_main);
  EXPECT_NE(cpp.find("int main() {"), std::string::npos);
}

TEST(CodegenHeaderTest, DeclaresOnlyPubFunctions) {
  auto result = core::compile_source(R"(
pub fn visible(a: i64) i64 { return a; }
fn hidden() void {}
)",
                                     {true, "h"});
  ASSERT_TRUE(result.ok);
  const std::string header = emit_header(*result.module);
  EXPECT_NE(header.find("std::int64_t visible(std::int64_t a);"),
            std::string::npos);
  EXPECT_EQ(header.find("hidden"), std::string::npos);
  EXPECT_NE(header.find("#pragma once"), std::string::npos);
}

TEST(CodegenTest, NumThreadsAndIfClauses) {
  const std::string cpp = gen(R"(
fn f(n: i64) void {
  var t: i64 = 0;
  //#omp parallel num_threads(4) if(n > 10)
  {
    t += 1;
  }
}
)");
  EXPECT_NE(cpp.find("zomp_push_num_threads("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_fork_call_if("), std::string::npos);
}

TEST(CodegenTest, ProcBindClausePushesBeforeFork) {
  const std::string cpp = gen(R"(
fn f() void {
  var t: i64 = 0;
  //#omp parallel proc_bind(spread)
  {
    t += 1;
  }
}
)");
  // spread = BindKind/omp_proc_bind_t value 4, pushed one-shot like
  // num_threads and consumed by the fork that follows.
  const auto push = cpp.find("zomp_push_proc_bind(");
  ASSERT_NE(push, std::string::npos);
  EXPECT_NE(cpp.find(", 4);", push), std::string::npos);
  EXPECT_LT(push, cpp.find("zomp_fork_call("));
}

TEST(CodegenTest, NoProcBindClauseEmitsNoPush) {
  const std::string cpp = gen(R"(
fn f() void {
  var t: i64 = 0;
  //#omp parallel
  {
    t += 1;
  }
}
)");
  EXPECT_EQ(cpp.find("zomp_push_proc_bind("), std::string::npos);
}

TEST(CodegenTest, TaskWithDepsEmitsDependArrayAndFlags) {
  const std::string cpp = gen(R"(
fn f(x: []i64, n: i64) void {
  //#omp parallel
  {
    //#omp single
    {
      const cn = n;
      //#omp task depend(out: x[0]) depend(in: x[1]) final(cn > 2) priority(3) untied
      {
        x[0] = 1;
      }
    }
  }
}
)");
  // Depend addresses evaluated at the creation site; kinds 2 = out, 1 = in.
  EXPECT_NE(cpp.find("zomp_depend_t"), std::string::npos);
  EXPECT_NE(cpp.find("), 2}"), std::string::npos);
  EXPECT_NE(cpp.find("), 1}"), std::string::npos);
  EXPECT_NE(cpp.find("zomp_task_with_deps("), std::string::npos);
  EXPECT_NE(cpp.find("ZOMP_TASK_FINAL"), std::string::npos);
  EXPECT_NE(cpp.find("ZOMP_TASK_UNTIED"), std::string::npos);
  // A plain task must NOT pay the rich entry point.
  const std::string plain = gen(R"(
fn g(x: []i64) void {
  //#omp parallel
  {
    //#omp single
    {
      //#omp task
      {
        x[0] = 1;
      }
    }
  }
}
)");
  EXPECT_NE(plain.find("zomp_task("), std::string::npos);
  EXPECT_EQ(plain.find("zomp_task_with_deps("), std::string::npos);
}

TEST(CodegenTest, TaskgroupEmitsRaiiGuard) {
  const std::string cpp = gen(R"(
fn f(x: []i64) void {
  //#omp parallel
  {
    //#omp single
    {
      //#omp taskgroup
      {
        //#omp task
        {
          x[0] = 1;
        }
      }
    }
  }
}
)");
  EXPECT_NE(cpp.find("zomp_taskgroup_begin("), std::string::npos);
  EXPECT_NE(cpp.find("zomp_taskgroup_end("), std::string::npos);
  // End rides a destructor so early returns still close the group.
  EXPECT_NE(cpp.find("~"), std::string::npos);
}

TEST(CodegenTest, TaskloopEmitsChunkThunkAndBounds) {
  const std::string cpp = gen(R"(
fn f(x: []i64, n: i64) void {
  //#omp parallel
  {
    //#omp single
    {
      const g = n;
      //#omp taskloop grainsize(g)
      for (0..n) |i| {
        x[i] = i;
      }
    }
  }
}
)");
  EXPECT_NE(cpp.find("zomp_taskloop("), std::string::npos);
  // Chunk thunk takes the bounds; the outlined fn receives them last.
  EXPECT_NE(cpp.find("static void run(std::int64_t __lo, std::int64_t __hi"),
            std::string::npos);
  EXPECT_NE(cpp.find(", __lo, __hi)"), std::string::npos);
}

TEST(CodegenTest, CancelForEmitsEscapeLabelAndLoopFlag) {
  const std::string cpp = gen(R"(
fn f(n: i64, x: []i64) void {
  //#omp parallel
  {
    //#omp for schedule(dynamic, 1)
    for (0..n) |i| {
      //#omp cancellation point for
      x[i] = 1;
      if (i == 5) {
        //#omp cancel for
      }
    }
  }
}
)");
  // Both the point and the cancel target the loop bit and jump to the escape
  // label the ws-loop emission planted before its closing barrier.
  EXPECT_NE(cpp.find("zomp_cancellation_point("), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("zomp_cancel("), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("ZOMP_CANCEL_LOOP"), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("goto __cancel_for_"), std::string::npos) << cpp;
  // The label detaches the dispatch slot so the ring entry is not leaked.
  const auto label = cpp.find("__cancel_for_");
  ASSERT_NE(label, std::string::npos);
  EXPECT_NE(cpp.find(": zomp_dispatch_break("), std::string::npos) << cpp;
}

TEST(CodegenTest, WsLoopWithoutCancelEmitsNoLabel) {
  // -Wunused-label hygiene: the escape label only materialises when a
  // body-level cancel will goto it.
  const std::string cpp = gen(R"(
fn f(n: i64, x: []i64) void {
  //#omp parallel for schedule(dynamic, 1)
  for (0..n) |i| {
    x[i] = 1;
  }
}
)");
  EXPECT_EQ(cpp.find("cancel_for_"), std::string::npos) << cpp;
}

TEST(CodegenTest, CancelParallelReturnsFromOutlinedRegion) {
  const std::string cpp = gen(R"(
fn f() void {
  var t: i64 = 0;
  //#omp parallel
  {
    t += 1;
    //#omp cancel parallel
  }
}
)");
  // Activation observed -> break any dispatch slot, then leave the outlined
  // region body; the join barrier is not cancellable.
  EXPECT_NE(cpp.find("if (zomp_cancel("), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("ZOMP_CANCEL_PARALLEL"), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("zomp_dispatch_break("), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("; return; }"), std::string::npos) << cpp;
}

TEST(CodegenTest, CancelTaskgroupUsesTaskgroupFlag) {
  const std::string cpp = gen(R"(
fn f(x: []i64) void {
  //#omp parallel
  {
    //#omp single
    {
      //#omp taskgroup
      {
        //#omp task
        {
          //#omp cancel taskgroup
          x[0] = 1;
        }
      }
    }
  }
}
)");
  EXPECT_NE(cpp.find("ZOMP_CANCEL_TASKGROUP"), std::string::npos) << cpp;
}

TEST(CodegenTest, BarrierInOutlinedRegionChecksAbandonment) {
  const std::string cpp = gen(R"(
fn f() void {
  var t: i64 = 0;
  //#omp parallel
  {
    //#omp barrier
    t += 1;
  }
}
)");
  // zomp_barrier returns 1 when the episode was abandoned by a pending
  // cancel parallel; region bodies react by returning to the join.
  EXPECT_NE(cpp.find("if (zomp_barrier("), std::string::npos) << cpp;
}

TEST(CodegenTest, StringEscapesInPrint) {
  const std::string cpp = gen(R"(
fn f() void { @print("a\"b\n"); }
)");
  EXPECT_NE(cpp.find(R"(mz::print("a\"b\n"))"), std::string::npos);
}

}  // namespace
}  // namespace zomp::codegen
