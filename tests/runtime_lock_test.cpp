// Lock family tests: plain, nestable, and spin locks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/lock.h"

namespace zomp::rt {
namespace {

template <typename LockT>
void contention_test(LockT& lock, int threads, int per_thread) {
  long counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < per_thread; ++i) {
        lock.set();
        ++counter;
        lock.unset();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(threads) * per_thread);
}

TEST(LockTest, MutualExclusion) {
  Lock lock;
  contention_test(lock, 4, 10000);
}

TEST(LockTest, TestAcquiresWhenFree) {
  Lock lock;
  EXPECT_TRUE(lock.test());
  lock.unset();
}

TEST(LockTest, TestFailsWhenHeld) {
  Lock lock;
  lock.set();
  std::thread other([&] { EXPECT_FALSE(lock.test()); });
  other.join();
  lock.unset();
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  contention_test(lock, 4, 10000);
}

TEST(SpinLockTest, TestSemantics) {
  SpinLock lock;
  EXPECT_TRUE(lock.test());
  EXPECT_FALSE(lock.test());
  lock.unset();
  EXPECT_TRUE(lock.test());
  lock.unset();
}

TEST(NestLockTest, OwnerMayReacquire) {
  NestLock lock;
  EXPECT_EQ(lock.set(), 1);
  EXPECT_EQ(lock.set(), 2);
  EXPECT_EQ(lock.set(), 3);
  lock.unset();
  lock.unset();
  lock.unset();
  // Fully released: another thread can take it now.
  std::thread other([&] {
    EXPECT_EQ(lock.set(), 1);
    lock.unset();
  });
  other.join();
}

TEST(NestLockTest, TestReturnsDepthForOwnerZeroForOthers) {
  NestLock lock;
  EXPECT_EQ(lock.test(), 1);
  EXPECT_EQ(lock.test(), 2);
  std::thread other([&] { EXPECT_EQ(lock.test(), 0); });
  other.join();
  lock.unset();
  lock.unset();
}

TEST(NestLockTest, ContendedCounting) {
  NestLock lock;
  long counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.set();
        lock.set();  // nested reacquire
        ++counter;
        lock.unset();
        lock.unset();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, 8000);
}

}  // namespace
}  // namespace zomp::rt
