// Topology & affinity subsystem (runtime/topology.h, runtime/places.h;
// DESIGN.md S1.8): the OMP_PLACES grammar, the pure placement math behind
// proc_bind(primary|close|spread), the binding round-trip through real
// forked regions (sched_getaffinity observed from inside), the no-op
// degradation when the OS refuses a mask, and the per-level hot-team cache
// interplay (re-arms must not re-issue setaffinity).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "runtime/hl.h"
#include "runtime/places.h"
#include "runtime/team.h"
#include "runtime/topology.h"

namespace zomp {
namespace {

using rt::BindKind;
using rt::BindingPlan;
using rt::Place;
using rt::PlaceTable;
using rt::Topology;

/// Snapshot/restore of the process place table so tests can install
/// synthetic tables without leaking them into later tests.
class PlaceTableGuard {
 public:
  PlaceTableGuard() {
    for (rt::i32 i = 0; i < PlaceTable::instance().num_places(); ++i) {
      saved_.push_back(PlaceTable::instance().place(i));
    }
  }
  ~PlaceTableGuard() {
    PlaceTable::instance().set_for_test(saved_);
    rt::GlobalIcv::instance().set_proc_bind_list({});
#if defined(__linux__)
    // Un-pin the main thread: bound tests narrowed its OS mask.
    cpu_set_t set;
    CPU_ZERO(&set);
    for (const rt::ProcInfo& p : Topology::instance().procs()) {
      if (p.os_proc >= 0 && p.os_proc < CPU_SETSIZE) CPU_SET(p.os_proc, &set);
    }
    sched_setaffinity(0, sizeof(set), &set);
#endif
  }

 private:
  std::vector<Place> saved_;
};

std::vector<rt::i32> place_procs(const Place& p) { return p.procs; }

// ---------------------------------------------------------------------------
// Topology builders
// ---------------------------------------------------------------------------

TEST(TopologyTest, FlatModelIsOneSocketOfSingleThreadCores) {
  const Topology topo = Topology::flat(4);
  ASSERT_EQ(topo.num_procs(), 4);
  EXPECT_EQ(topo.num_cores(), 4);
  EXPECT_EQ(topo.num_sockets(), 1);
  EXPECT_TRUE(topo.flat_fallback());
  for (rt::i32 i = 0; i < 4; ++i) {
    EXPECT_EQ(topo.procs()[static_cast<std::size_t>(i)].os_proc, i);
    EXPECT_EQ(topo.procs()[static_cast<std::size_t>(i)].smt, 0);
  }
}

TEST(TopologyTest, SyntheticSmtGroupsSiblings) {
  // 2 sockets x 2 cores x 2 SMT = 8 procs, 4 cores.
  const Topology topo = Topology::synthetic(2, 2, 2);
  ASSERT_EQ(topo.num_procs(), 8);
  EXPECT_EQ(topo.num_cores(), 4);
  EXPECT_EQ(topo.num_sockets(), 2);
  EXPECT_FALSE(topo.flat_fallback());
  // Siblings adjacent, smt ranks 0/1 alternating.
  for (std::size_t i = 0; i < 8; i += 2) {
    EXPECT_EQ(topo.procs()[i].core, topo.procs()[i + 1].core);
    EXPECT_EQ(topo.procs()[i].smt, 0);
    EXPECT_EQ(topo.procs()[i + 1].smt, 1);
  }
}

TEST(TopologyTest, ProcessTopologyMatchesAffinityMask) {
  const Topology& topo = Topology::instance();
  EXPECT_GE(topo.num_procs(), 1);
  const auto mask = rt::process_affinity_mask();
  if (!mask.empty()) {
    EXPECT_EQ(topo.num_procs(), static_cast<rt::i32>(mask.size()))
        << "usable procs must be the sched_getaffinity set";
  }
}

// ---------------------------------------------------------------------------
// OMP_PLACES grammar
// ---------------------------------------------------------------------------

TEST(PlacesParseTest, AbstractNames) {
  const Topology topo = Topology::synthetic(2, 2, 2);  // 8 threads, 4 cores
  auto threads = rt::parse_places("threads", topo);
  ASSERT_TRUE(threads.ok) << threads.error;
  EXPECT_EQ(threads.places.size(), 8u);

  auto cores = rt::parse_places("cores", topo);
  ASSERT_TRUE(cores.ok);
  ASSERT_EQ(cores.places.size(), 4u);
  EXPECT_EQ(cores.places[0].procs.size(), 2u) << "core place = SMT siblings";

  auto sockets = rt::parse_places("sockets", topo);
  ASSERT_TRUE(sockets.ok);
  ASSERT_EQ(sockets.places.size(), 2u);
  EXPECT_EQ(sockets.places[0].procs.size(), 4u);
}

TEST(PlacesParseTest, AbstractNameWithCount) {
  const Topology topo = Topology::flat(8);
  auto four = rt::parse_places("cores(4)", topo);
  ASSERT_TRUE(four.ok);
  EXPECT_EQ(four.places.size(), 4u);
  // Count beyond the machine clamps to what exists.
  auto many = rt::parse_places("threads(64)", topo);
  ASSERT_TRUE(many.ok);
  EXPECT_EQ(many.places.size(), 8u);
}

TEST(PlacesParseTest, ExplicitLists) {
  const Topology topo = Topology::flat(16);
  auto parsed = rt::parse_places("{0,1},{2:4},{0:8:2}", topo);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.places.size(), 3u);
  EXPECT_EQ(place_procs(parsed.places[0]), (std::vector<rt::i32>{0, 1}));
  EXPECT_EQ(place_procs(parsed.places[1]), (std::vector<rt::i32>{2, 3, 4, 5}));
  EXPECT_EQ(place_procs(parsed.places[2]),
            (std::vector<rt::i32>{0, 2, 4, 6, 8, 10, 12, 14}));
}

TEST(PlacesParseTest, WhitespaceAndDuplicatesTolerated) {
  const Topology topo = Topology::flat(8);
  auto parsed = rt::parse_places(" { 0 , 1 , 1 } , { 4 : 2 } ", topo);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.places.size(), 2u);
  EXPECT_EQ(place_procs(parsed.places[0]), (std::vector<rt::i32>{0, 1}));
  EXPECT_EQ(place_procs(parsed.places[1]), (std::vector<rt::i32>{4, 5}));
}

TEST(PlacesParseTest, RestrictedMaskTrimsAndDropsPlaces) {
  // The `taskset` path: procs outside the topology are trimmed; places left
  // empty disappear; a single surviving place is legal.
  const Topology topo = Topology::flat(2);  // only procs 0 and 1 usable
  auto parsed = rt::parse_places("{0:2},{2:2}", topo);
  ASSERT_TRUE(parsed.ok);
  ASSERT_EQ(parsed.places.size(), 1u) << "fully-trimmed place must drop";
  EXPECT_EQ(place_procs(parsed.places[0]), (std::vector<rt::i32>{0, 1}));
}

TEST(PlacesParseTest, Diagnostics) {
  const Topology topo = Topology::flat(8);
  EXPECT_FALSE(rt::parse_places("{0,1", topo).ok);
  EXPECT_NE(rt::parse_places("{0,1", topo).error.find("unbalanced"),
            std::string::npos);
  EXPECT_FALSE(rt::parse_places("{0:2:-1}", topo).ok);
  EXPECT_NE(rt::parse_places("{0:2:-1}", topo).error.find("negative stride"),
            std::string::npos);
  EXPECT_FALSE(rt::parse_places("{0:-2}", topo).ok);
  EXPECT_FALSE(rt::parse_places("{0:0}", topo).ok);
  EXPECT_FALSE(rt::parse_places("{-1}", topo).ok);
  EXPECT_FALSE(rt::parse_places("nodes", topo).ok);
  EXPECT_FALSE(rt::parse_places("cores(0)", topo).ok);
  EXPECT_FALSE(rt::parse_places("cores(2) extra", topo).ok);
  EXPECT_FALSE(rt::parse_places("{1}garbage", topo).ok);
  // Absurd lengths/strides/ids are rejected before any expansion happens
  // (no multi-gigabyte allocation from an environment variable), including
  // digit strings past the i64 range.
  EXPECT_NE(rt::parse_places("{0:2000000000}", topo).error.find("length"),
            std::string::npos);
  EXPECT_NE(
      rt::parse_places("{0:99999999999999999999}", topo).error.find("length"),
      std::string::npos);
  EXPECT_FALSE(rt::parse_places("{0:4:1000000}", topo).ok);
  EXPECT_FALSE(rt::parse_places("{1000000}", topo).ok);
}

TEST(ProcBindParseTest, ListsAndAliases) {
  using List = std::vector<BindKind>;
  EXPECT_EQ(rt::parse_proc_bind("spread"), (List{BindKind::kSpread}));
  EXPECT_EQ(rt::parse_proc_bind("spread,close"),
            (List{BindKind::kSpread, BindKind::kClose}));
  EXPECT_EQ(rt::parse_proc_bind(" MASTER "), (List{BindKind::kPrimary}));
  EXPECT_EQ(rt::parse_proc_bind("primary"), (List{BindKind::kPrimary}));
  EXPECT_EQ(rt::parse_proc_bind("false"), (List{BindKind::kFalse}));
  EXPECT_EQ(rt::parse_proc_bind("true"), (List{BindKind::kTrue}));
  EXPECT_FALSE(rt::parse_proc_bind("sideways").has_value());
  EXPECT_FALSE(rt::parse_proc_bind("close,,spread").has_value());
  EXPECT_FALSE(rt::parse_proc_bind("").has_value());
}

// ---------------------------------------------------------------------------
// Placement math (pure, over a synthetic table)
// ---------------------------------------------------------------------------

std::vector<Place> synthetic_places(int n) {
  std::vector<Place> places;
  for (int i = 0; i < n; ++i) {
    Place p;
    p.procs.push_back(i);
    places.push_back(p);
  }
  return places;
}

TEST(PlanBindingTest, InactiveWhenFalseOrUnset) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(4));
  EXPECT_FALSE(rt::plan_binding(BindKind::kFalse, 0, 4, -1, 4).active);
  EXPECT_FALSE(rt::plan_binding(BindKind::kUnset, 0, 4, -1, 4).active);
  EXPECT_EQ(rt::binding_sig(BindKind::kFalse, 0, 4, -1, 4), 0u);
  PlaceTable::instance().set_for_test({});
  EXPECT_FALSE(rt::plan_binding(BindKind::kSpread, 0, 0, -1, 4).active)
      << "no places -> no binding";
}

TEST(PlanBindingTest, PrimaryPutsEveryoneOnTheMastersPlace) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(4));
  const BindingPlan plan = rt::plan_binding(BindKind::kPrimary, 0, 4, 2, 4);
  ASSERT_TRUE(plan.active);
  for (const auto& mb : plan.members) {
    EXPECT_EQ(mb.place, 2);
    EXPECT_EQ(mb.part_lo, 0);
    EXPECT_EQ(mb.part_len, 4);
  }
}

TEST(PlanBindingTest, CloseIsConsecutiveFromTheMaster) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(8));
  for (const int T : {1, 2, 4, 8}) {
    const BindingPlan plan = rt::plan_binding(BindKind::kClose, 0, 8, 0, T);
    ASSERT_TRUE(plan.active);
    ASSERT_EQ(static_cast<int>(plan.members.size()), T);
    for (int i = 0; i < T; ++i) {
      EXPECT_EQ(plan.members[static_cast<std::size_t>(i)].place, i)
          << "close T=" << T << " member " << i;
      // close leaves the partition whole.
      EXPECT_EQ(plan.members[static_cast<std::size_t>(i)].part_len, 8);
    }
  }
  // Master mid-partition: assignment rotates from its place.
  const BindingPlan rotated = rt::plan_binding(BindKind::kClose, 0, 4, 3, 2);
  EXPECT_EQ(rotated.members[0].place, 3);
  EXPECT_EQ(rotated.members[1].place, 0);
}

TEST(PlanBindingTest, CloseOversubscribedGroupsMembers) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(2));
  const BindingPlan plan = rt::plan_binding(BindKind::kClose, 0, 2, 0, 4);
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.members[0].place, 0);
  EXPECT_EQ(plan.members[1].place, 0);
  EXPECT_EQ(plan.members[2].place, 1);
  EXPECT_EQ(plan.members[3].place, 1);
}

TEST(PlanBindingTest, SpreadSubdividesThePartitionDisjointly) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(8));
  for (const int T : {1, 2, 4, 8}) {
    const BindingPlan plan = rt::plan_binding(BindKind::kSpread, 0, 8, 0, T);
    ASSERT_TRUE(plan.active);
    std::set<int> firsts;
    int covered = 0;
    for (int i = 0; i < T; ++i) {
      const auto& mb = plan.members[static_cast<std::size_t>(i)];
      EXPECT_EQ(mb.place, mb.part_lo) << "member sits on its slice's head";
      firsts.insert(mb.part_lo);
      covered += mb.part_len;
      if (i > 0) {
        const auto& prev = plan.members[static_cast<std::size_t>(i - 1)];
        EXPECT_EQ(prev.part_lo + prev.part_len, mb.part_lo)
            << "subpartitions are contiguous and disjoint, T=" << T;
      }
    }
    EXPECT_EQ(static_cast<int>(firsts.size()), T) << "distinct places, T=" << T;
    EXPECT_EQ(covered, 8) << "subpartitions cover the parent, T=" << T;
  }
}

TEST(PlanBindingTest, SpreadRotatesToStartAtTheMastersSlice) {
  // OpenMP 5.2 S10.1.3: with T <= K the subpartition numbering begins with
  // the subpartition containing the parent thread's place, and the master
  // keeps its exact place. 8 places split into two slices of 4.
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(8));
  {
    // Master mid-way through the FIRST slice: member 0 keeps place 3 and
    // owns slice [0,4); member 1 starts the next slice at place 4.
    const BindingPlan plan = rt::plan_binding(BindKind::kSpread, 0, 8, 3, 2);
    ASSERT_TRUE(plan.active);
    EXPECT_EQ(plan.members[0].place, 3);
    EXPECT_EQ(plan.members[0].part_lo, 0);
    EXPECT_EQ(plan.members[0].part_len, 4);
    EXPECT_EQ(plan.members[1].place, 4);
    EXPECT_EQ(plan.members[1].part_lo, 4);
    EXPECT_EQ(plan.members[1].part_len, 4);
  }
  {
    // Master in the SECOND slice: the numbering wraps, so member 1 lands on
    // the first slice — before the fix it was pushed past the partition end.
    const BindingPlan plan = rt::plan_binding(BindKind::kSpread, 0, 8, 5, 2);
    ASSERT_TRUE(plan.active);
    EXPECT_EQ(plan.members[0].place, 5) << "master keeps its own place";
    EXPECT_EQ(plan.members[0].part_lo, 4);
    EXPECT_EQ(plan.members[0].part_len, 4);
    EXPECT_EQ(plan.members[1].place, 0);
    EXPECT_EQ(plan.members[1].part_lo, 0);
    EXPECT_EQ(plan.members[1].part_len, 4);
  }
}

TEST(PlanBindingTest, SpreadOversubscribedRotatesFromTheMaster) {
  // T > K: single-place subpartitions assigned round-robin starting at the
  // master's place (K=2, T=4, master on place 1).
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(2));
  const BindingPlan plan = rt::plan_binding(BindKind::kSpread, 0, 2, 1, 4);
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.members[0].place, 1);
  EXPECT_EQ(plan.members[1].place, 1);
  EXPECT_EQ(plan.members[2].place, 0);
  EXPECT_EQ(plan.members[3].place, 0);
  for (const auto& mb : plan.members) {
    EXPECT_EQ(mb.part_len, 1) << "oversubscribed spread narrows to one place";
    EXPECT_EQ(mb.part_lo, mb.place);
  }
}

TEST(PlanBindingTest, AcceptanceShapeExplicitPairsSpreadOfFour) {
  // The ISSUE acceptance scenario at the plan level: OMP_PLACES={0:2},{2:2}
  // parsed on a 4-proc machine, proc_bind(spread) at 4 threads -> members
  // 0,1 on place 0 (procs {0,1}) and members 2,3 on place 1 (procs {2,3}),
  // masks disjoint between the groups.
  PlaceTableGuard guard;
  auto parsed = rt::parse_places("{0:2},{2:2}", Topology::flat(4));
  ASSERT_TRUE(parsed.ok);
  ASSERT_EQ(parsed.places.size(), 2u);
  PlaceTable::instance().set_for_test(parsed.places);
  const BindingPlan plan = rt::plan_binding(BindKind::kSpread, 0, 2, -1, 4);
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.members[0].place, 0);
  EXPECT_EQ(plan.members[1].place, 0);
  EXPECT_EQ(plan.members[2].place, 1);
  EXPECT_EQ(plan.members[3].place, 1);
  // Each group's partition narrows to its own single place: nested teams
  // inherit disjoint slices.
  EXPECT_EQ(plan.members[0].part_len, 1);
  EXPECT_EQ(plan.members[2].part_lo, 1);
}

TEST(PlanBindingTest, SignatureDistinguishesShapeAndTableGeneration) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(synthetic_places(4));
  const rt::u64 a = rt::binding_sig(BindKind::kClose, 0, 4, -1, 4);
  const rt::u64 b = rt::binding_sig(BindKind::kSpread, 0, 4, -1, 4);
  const rt::u64 c = rt::binding_sig(BindKind::kClose, 0, 4, -1, 2);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  PlaceTable::instance().set_for_test(synthetic_places(4));  // new generation
  EXPECT_NE(rt::binding_sig(BindKind::kClose, 0, 4, -1, 4), a)
      << "table replacement must invalidate cached placements";
}

// ---------------------------------------------------------------------------
// Binding round-trip through real regions
// ---------------------------------------------------------------------------

/// Builds a table of one place per usable OS proc (so masks are exact).
std::vector<Place> per_proc_places() {
  std::vector<Place> places;
  for (const rt::ProcInfo& p : Topology::instance().procs()) {
    Place place;
    place.procs.push_back(p.os_proc);
    places.push_back(place);
  }
  return places;
}

#if defined(__linux__)
std::vector<rt::i32> current_os_mask() {
  std::vector<rt::i32> out;
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int p = 0; p < CPU_SETSIZE; ++p) {
      if (CPU_ISSET(p, &set)) out.push_back(p);
    }
  }
  return out;
}
#endif

TEST(BindingRoundTripTest, CloseAndSpreadObservableInsideRegions) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(per_proc_places());
  const int K = PlaceTable::instance().num_places();
  ASSERT_GE(K, 1);

  for (const BindKind bind : {BindKind::kClose, BindKind::kSpread}) {
    for (const int T : {1, 2, 4, 8}) {
      std::mutex mu;
      std::vector<int> seen_places;
      std::atomic<int> mask_mismatches{0};
      ParallelOptions opts;
      opts.num_threads = T;
      opts.proc_bind = bind;
      parallel(
          [&] {
            rt::ThreadState& ts = rt::current_thread();
            const int place = place_num();
            {
              const std::lock_guard<std::mutex> lock(mu);
              seen_places.push_back(place);
            }
            EXPECT_GE(place, 0) << "bound region must assign a place";
            EXPECT_LT(place, K);
#if defined(__linux__)
            // Only check the OS mask when the runtime reports it actually
            // applied one (bound_place is the applied-mask cache).
            if (ts.bound_place == place) {
              const auto mask = current_os_mask();
              const auto want =
                  PlaceTable::instance().place(place).procs;
              if (mask != want) mask_mismatches.fetch_add(1);
            }
#endif
          },
          opts);
      EXPECT_EQ(mask_mismatches.load(), 0)
          << bind_kind_name(bind) << " T=" << T;
      ASSERT_EQ(static_cast<int>(seen_places.size()), T);
      // Distinct members get distinct places while the team fits the table.
      std::set<int> distinct(seen_places.begin(), seen_places.end());
      EXPECT_EQ(static_cast<int>(distinct.size()), std::min(T, K))
          << bind_kind_name(bind) << " T=" << T;
    }
  }
}

TEST(BindingRoundTripTest, SpreadGroupsAreDisjointWhenOversubscribed) {
  // The acceptance scenario end-to-end, adapted to whatever machine the test
  // runs on: two places, four threads, spread -> two disjoint groups.
  PlaceTableGuard guard;
  auto places = per_proc_places();
  if (places.size() < 2) {
    GTEST_SKIP() << "needs >= 2 usable processors";
  }
  // Exactly two places, splitting the usable procs.
  std::vector<Place> two(2);
  for (std::size_t i = 0; i < places.size(); ++i) {
    two[i < places.size() / 2 ? 0 : 1].procs.push_back(places[i].procs[0]);
  }
  PlaceTable::instance().set_for_test(two);

  std::mutex mu;
  std::vector<std::pair<int, int>> tid_place;
  ParallelOptions opts;
  opts.num_threads = 4;
  opts.proc_bind = BindKind::kSpread;
  parallel(
      [&] {
        const std::lock_guard<std::mutex> lock(mu);
        tid_place.emplace_back(thread_num(), place_num());
      },
      opts);
  ASSERT_EQ(tid_place.size(), 4u);
  for (const auto& [tid, place] : tid_place) {
    EXPECT_EQ(place, tid < 2 ? 0 : 1) << "tid " << tid;
  }
}

TEST(BindingRoundTripTest, RefusedMaskDegradesToLogicalNoOp) {
  // Places naming processors outside the process mask: sched_setaffinity
  // refuses, the region must still run, and the logical place assignment
  // must still be observable.
  PlaceTableGuard guard;
  std::vector<Place> bogus(2);
  bogus[0].procs = {CPU_SETSIZE - 2};  // almost certainly not ours
  bogus[1].procs = {CPU_SETSIZE - 1};
  PlaceTable::instance().set_for_test(bogus);
  std::atomic<int> ran{0};
  std::atomic<int> placed{0};
  ParallelOptions opts;
  opts.num_threads = 2;
  opts.proc_bind = BindKind::kClose;
  parallel(
      [&] {
        ran.fetch_add(1);
        if (place_num() >= 0) placed.fetch_add(1);
        EXPECT_EQ(rt::current_thread().bound_place, -1)
            << "refused mask must not be recorded as applied";
      },
      opts);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(placed.load(), 2) << "logical placement survives refusal";
}

TEST(BindingRoundTripTest, ProcBindListDrivesUnclausedRegions) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(per_proc_places());
  rt::GlobalIcv::instance().set_proc_bind_list(
      {BindKind::kSpread, BindKind::kClose});
  EXPECT_EQ(get_proc_bind(), BindKind::kSpread)
      << "omp_get_proc_bind reports the next fork's policy";
  std::atomic<int> bound{0};
  std::atomic<int> nested_kind{-1};
  parallel(
      [&] {
        if (place_num() >= 0) bound.fetch_add(1);
        master([&] {
          nested_kind.store(static_cast<int>(get_proc_bind()));
        });
      },
      ParallelOptions{2, true});
  EXPECT_EQ(bound.load(), 2) << "list entry 0 must bind without a clause";
  EXPECT_EQ(nested_kind.load(), static_cast<int>(BindKind::kClose))
      << "inside the region the list advances one nesting level";
}

TEST(BindingRoundTripTest, PartitionQueriesInsideSpread) {
  PlaceTableGuard guard;
  auto places = per_proc_places();
  if (places.size() < 2) GTEST_SKIP() << "needs >= 2 places";
  PlaceTable::instance().set_for_test(places);
  const int K = PlaceTable::instance().num_places();
  EXPECT_EQ(num_places(), K);
  EXPECT_EQ(partition_num_places(), K) << "initial partition = whole table";

  std::atomic<int> bad{0};
  ParallelOptions opts;
  opts.num_threads = K;
  opts.proc_bind = BindKind::kSpread;
  parallel(
      [&] {
        // Under spread each member's partition is its own slice.
        if (partition_num_places() != 1) bad.fetch_add(1);
        rt::i32 nums[1] = {-1};
        partition_place_nums(nums);
        if (nums[0] != place_num()) bad.fetch_add(1);
      },
      opts);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(partition_num_places(), K) << "partition restored after join";
}

TEST(BindingRoundTripTest, PlaceQueryApi) {
  PlaceTableGuard guard;
  std::vector<Place> table(2);
  table[0].procs = {0};
  table[1].procs = {0};
  PlaceTable::instance().set_for_test(table);
  EXPECT_EQ(num_places(), 2);
  EXPECT_EQ(place_num_procs(0), 1);
  EXPECT_EQ(place_num_procs(99), 0);
  rt::i32 ids[1] = {-1};
  place_proc_ids(0, ids);
  EXPECT_EQ(ids[0], 0);
}

TEST(BindingRoundTripTest, AffinityReportFormat) {
  PlaceTableGuard guard;
  std::vector<Place> table(1);
  table[0].procs = {0};
  PlaceTable::instance().set_for_test(table);
  ParallelOptions opts;
  opts.num_threads = 1;
  opts.proc_bind = BindKind::kClose;
  std::string report;
  parallel([&] { report = rt::affinity_report(rt::current_thread()); }, opts);
  EXPECT_NE(report.find("level 1"), std::string::npos) << report;
  EXPECT_NE(report.find("thread 0"), std::string::npos) << report;
  EXPECT_NE(report.find("place 0"), std::string::npos) << report;
  EXPECT_NE(report.find("{0}"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// affinity-format-var (OMP_AFFINITY_FORMAT, omp_*_affinity_format family)
// ---------------------------------------------------------------------------

/// Restores affinity-format-var on scope exit so format tests do not leak
/// into each other (the ICV is process-wide).
class AffinityFormatGuard {
 public:
  AffinityFormatGuard() : saved_(rt::GlobalIcv::instance().affinity_format()) {}
  ~AffinityFormatGuard() { rt::GlobalIcv::instance().set_affinity_format(saved_); }

 private:
  std::string saved_;
};

TEST(AffinityFormatTest, ShortFieldsExpand) {
  PlaceTableGuard guard;
  std::vector<Place> table(1);
  table[0].procs = {0};
  PlaceTable::instance().set_for_test(table);
  ParallelOptions opts;
  opts.num_threads = 2;
  opts.proc_bind = BindKind::kClose;
  std::vector<std::string> reports(2);
  parallel(
      [&] {
        reports[static_cast<std::size_t>(thread_num())] = rt::affinity_report(
            rt::current_thread(), "n=%n N=%N L=%L A={%A} pct=%%");
      },
      opts);
  EXPECT_EQ(reports[0], "n=0 N=2 L=1 A={0} pct=%");
  EXPECT_EQ(reports[1], "n=1 N=2 L=1 A={0} pct=%");
}

TEST(AffinityFormatTest, ProcessAndThreadIdsAreNumeric) {
  const std::string report = rt::affinity_report(
      rt::current_thread(), "%P/%i");
  const auto slash = report.find('/');
  ASSERT_NE(slash, std::string::npos) << report;
  EXPECT_NE(report.substr(0, slash).find_first_of("0123456789"),
            std::string::npos)
      << report;
  EXPECT_NE(report.substr(slash + 1).find_first_of("0123456789"),
            std::string::npos)
      << report;
}

TEST(AffinityFormatTest, LongNamesAndUnknownEscapes) {
  const std::string report = rt::affinity_report(
      rt::current_thread(), "%{thread_num}|%{no_such_field}|%Z|%{open");
  EXPECT_EQ(report, "0|%{no_such_field}|%Z|%{open");
}

TEST(AffinityFormatTest, SetGetCaptureRoundTrip) {
  AffinityFormatGuard guard;
  set_affinity_format("thread %n of %N");
  char buf[64] = {};
  const std::size_t len = get_affinity_format(buf, sizeof(buf));
  EXPECT_EQ(std::string(buf), "thread %n of %N");
  EXPECT_EQ(len, std::string("thread %n of %N").size());

  // Truncation contract: short buffers NUL-terminate, return full length.
  char tiny[8] = {};
  EXPECT_EQ(get_affinity_format(tiny, sizeof(tiny)), len);
  EXPECT_EQ(std::string(tiny), "thread ");

  char cap[64] = {};
  const std::size_t cap_len = capture_affinity(cap, sizeof(cap), nullptr);
  EXPECT_EQ(std::string(cap), "thread 0 of 1");
  EXPECT_EQ(cap_len, std::string("thread 0 of 1").size());

  // Explicit format overrides the ICV for one call.
  char once[64] = {};
  capture_affinity(once, sizeof(once), "L%L");
  EXPECT_EQ(std::string(once), "L0");
}

TEST(AffinityFormatTest, DefaultFormatMatchesLegacyReport) {
  AffinityFormatGuard guard;
  rt::GlobalIcv::instance().set_affinity_format(
      "zomp: level %L thread %n bound to place %p, OS procs {%A}");
  const std::string report = rt::affinity_report(rt::current_thread());
  EXPECT_NE(report.find("zomp: level 0 thread 0 bound to place"),
            std::string::npos)
      << report;
}

// ---------------------------------------------------------------------------
// Hot-team cache interplay
// ---------------------------------------------------------------------------

TEST(HotTeamAffinityTest, RearmSkipsTheAffinitySyscall) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(per_proc_places());
  ParallelOptions opts;
  opts.num_threads = 2;
  opts.proc_bind = BindKind::kClose;
  rt::Team* first = nullptr;
  parallel([&] { master([&] { first = rt::current_thread().team; }); }, opts);
  const rt::i64 calls_after_first = rt::affinity_syscall_count();
  for (int i = 0; i < 20; ++i) {
    rt::Team* again = nullptr;
    parallel([&] { master([&] { again = rt::current_thread().team; }); },
             opts);
    ASSERT_EQ(again, first) << "same shape+bind must recycle the team";
  }
  EXPECT_EQ(rt::affinity_syscall_count(), calls_after_first)
      << "unchanged re-arms must not touch sched_setaffinity";
}

TEST(HotTeamAffinityTest, BindChangeRebuildsAndRebinds) {
  PlaceTableGuard guard;
  PlaceTable::instance().set_for_test(per_proc_places());
  rt::Team* close_team = nullptr;
  rt::Team* spread_team = nullptr;
  ParallelOptions close_opts;
  close_opts.num_threads = 2;
  close_opts.proc_bind = BindKind::kClose;
  ParallelOptions spread_opts;
  spread_opts.num_threads = 2;
  spread_opts.proc_bind = BindKind::kSpread;
  parallel([&] { master([&] { close_team = rt::current_thread().team; }); },
           close_opts);
  parallel([&] { master([&] { spread_team = rt::current_thread().team; }); },
           spread_opts);
  if (PlaceTable::instance().num_places() >= 2) {
    EXPECT_NE(close_team, spread_team)
        << "binding signature is part of the cache key";
  }
  // Alternating bind kinds now hits both cached entries.
  for (int i = 0; i < 10; ++i) {
    rt::Team* t = nullptr;
    const ParallelOptions& opts = (i % 2 == 0) ? close_opts : spread_opts;
    parallel([&] { master([&] { t = rt::current_thread().team; }); }, opts);
    if (PlaceTable::instance().num_places() >= 2) {
      ASSERT_EQ(t, (i % 2 == 0) ? close_team : spread_team) << "round " << i;
    }
  }
}

TEST(HotTeamAffinityTest, AlternatingShapesBothStayHot) {
  // The per-level associative cache (ROADMAP item): alternating between two
  // region shapes must reuse both team objects instead of rebuild-churning.
  rt::Team* team_a = nullptr;
  rt::Team* team_b = nullptr;
  parallel([&] { master([&] { team_a = rt::current_thread().team; }); },
           ParallelOptions{4, true});
  parallel([&] { master([&] { team_b = rt::current_thread().team; }); },
           ParallelOptions{2, true});
  const int spawned = rt::Pool::instance().spawned();
  for (int i = 0; i < 20; ++i) {
    rt::Team* t = nullptr;
    parallel([&] { master([&] { t = rt::current_thread().team; }); },
             ParallelOptions{i % 2 == 0 ? 4 : 2, true});
    ASSERT_EQ(t, i % 2 == 0 ? team_a : team_b) << "round " << i;
  }
  EXPECT_EQ(rt::Pool::instance().spawned(), spawned)
      << "alternating shapes must not rebuild through the pool";
}

TEST(HotTeamAffinityTest, NestedTeamsCachePerLevel) {
  set_max_active_levels(2);
  // Each outer member masters a nested team; with per-level slots the inner
  // team objects are recycled across rounds too.
  std::array<std::atomic<rt::Team*>, 2> inner_first = {};
  std::atomic<int> stable{0};
  for (int round = 0; round < 8; ++round) {
    parallel(
        [&] {
          const int tid = thread_num();
          parallel(
              [&] {
                master([&] {
                  rt::Team* t = rt::current_thread().team;
                  rt::Team* expected = inner_first[static_cast<std::size_t>(
                      tid)].load();
                  if (expected == nullptr) {
                    inner_first[static_cast<std::size_t>(tid)].store(t);
                  } else if (expected == t) {
                    stable.fetch_add(1);
                  }
                });
              },
              ParallelOptions{2, true});
        },
        ParallelOptions{2, true});
  }
  set_max_active_levels(1);
  EXPECT_EQ(stable.load(), 2 * 7)
      << "nested teams must be recycled from the per-level cache";
}

}  // namespace
}  // namespace zomp
