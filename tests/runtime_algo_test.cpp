// zomp::algo property tests (DESIGN.md S11): every primitive must be
// byte-identical to its serial oracle at every team width, for every input
// shape — empty, singleton, non-power-of-two, duplicate-heavy, pre-sorted,
// reverse-sorted. The parallel paths are forced (serial_cutoff = 1) so even
// tiny sizes exercise the PhaseSync protocol, and a spawn-fault run proves
// the decoupled scan stays correct on a shrunken team.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <numeric>
#include <random>
#include <vector>

#include "runtime/fault.h"
#include "runtime/runtime.h"

namespace zomp {
namespace {

using rt::i64;
using rt::u64;

constexpr int kWidths[] = {1, 2, 4, 8};

/// Options that force the parallel path regardless of size.
algo::Options opts_for(int width) {
  algo::Options o;
  o.num_threads = width;
  o.serial_cutoff = 1;
  return o;
}

/// Input shapes: the scan/sort failure modes live in slice-boundary and
/// equal-key handling, so sizes straddle power-of-two edges and values
/// repeat heavily.
const std::vector<i64>& test_sizes() {
  static const std::vector<i64> kSizes = {0, 1, 2, 3, 7, 64, 1000, 10007};
  return kSizes;
}

template <typename T>
std::vector<T> random_values(i64 n, u64 seed, T lo, T hi) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<long long> dist(static_cast<long long>(lo),
                                                static_cast<long long>(hi));
  std::vector<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<T>(dist(rng));
  return v;
}

template <typename T>
std::vector<std::vector<T>> input_shapes(i64 n, T lo, T hi) {
  std::vector<std::vector<T>> shapes;
  shapes.push_back(random_values<T>(n, 0x5eed0000u + static_cast<u64>(n), lo,
                                    hi));              // uniform random
  shapes.push_back(random_values<T>(n, 0xd0d00000u + static_cast<u64>(n),
                                    T{0}, T{3}));      // duplicate-heavy
  std::vector<T> sorted = shapes.front();
  std::sort(sorted.begin(), sorted.end());
  shapes.push_back(sorted);                            // already sorted
  std::reverse(sorted.begin(), sorted.end());
  shapes.push_back(sorted);                            // reverse sorted
  return shapes;
}

// -- Scans -------------------------------------------------------------------

TEST(AlgoScanTest, ExclusiveMatchesSerialOracleAcrossShapesAndWidths) {
  for (const i64 n : test_sizes()) {
    for (const auto& in : input_shapes<i64>(n, -1000, 1000)) {
      std::vector<i64> oracle(in.size());
      i64 run = 7;
      for (std::size_t i = 0; i < in.size(); ++i) {
        oracle[i] = run;
        run += in[i];
      }
      for (const int w : kWidths) {
        std::vector<i64> out(in.size(), -1);
        algo::exclusive_scan(in.data(), out.data(), n, i64{7}, std::plus<>{},
                             opts_for(w));
        EXPECT_EQ(out, oracle) << "n=" << n << " w=" << w;
      }
    }
  }
}

TEST(AlgoScanTest, InclusiveMatchesSerialOracleAcrossShapesAndWidths) {
  for (const i64 n : test_sizes()) {
    for (const auto& in : input_shapes<i64>(n, -1000, 1000)) {
      std::vector<i64> oracle(in.size());
      i64 run = 0;
      for (std::size_t i = 0; i < in.size(); ++i) {
        run += in[i];
        oracle[i] = run;
      }
      for (const int w : kWidths) {
        std::vector<i64> out(in.size(), -1);
        algo::inclusive_scan(in.data(), out.data(), n, std::plus<>{},
                             opts_for(w));
        EXPECT_EQ(out, oracle) << "n=" << n << " w=" << w;
      }
    }
  }
}

TEST(AlgoScanTest, ExclusiveScanWorksInPlace) {
  const std::vector<i64> in = random_values<i64>(5000, 42, -50, 50);
  std::vector<i64> oracle(in.size());
  i64 run = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    oracle[i] = run;
    run += in[i];
  }
  for (const int w : kWidths) {
    std::vector<i64> buf = in;
    algo::exclusive_scan(buf.data(), buf.data(),
                         static_cast<i64>(buf.size()), i64{0}, std::plus<>{},
                         opts_for(w));
    EXPECT_EQ(buf, oracle) << "w=" << w;
  }
}

TEST(AlgoScanTest, NonCommutativeOpRespectsElementOrder) {
  // Scans require associativity, not commutativity: 2x2 matrix product mod
  // p is associative but order-sensitive, so any operand swap in the carry
  // chain (or a block boundary folded the wrong way) changes the result.
  struct M2 {
    i64 a, b, c, d;
    bool operator==(const M2&) const = default;
  };
  constexpr i64 kP = 10007;
  const auto op = [](const M2& x, const M2& y) {
    return M2{(x.a * y.a + x.b * y.c) % kP, (x.a * y.b + x.b * y.d) % kP,
              (x.c * y.a + x.d * y.c) % kP, (x.c * y.b + x.d * y.d) % kP};
  };
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<i64> dist(0, kP - 1);
  std::vector<M2> in(2049);
  for (auto& m : in) m = M2{dist(rng), dist(rng), dist(rng), dist(rng)};
  std::vector<M2> oracle(in.size());
  M2 run = in.front();
  oracle[0] = run;
  for (std::size_t i = 1; i < in.size(); ++i) {
    run = op(run, in[i]);
    oracle[i] = run;
  }
  for (const int w : kWidths) {
    std::vector<M2> out(in.size());
    algo::inclusive_scan(in.data(), out.data(), static_cast<i64>(in.size()),
                         op, opts_for(w));
    EXPECT_EQ(out, oracle) << "w=" << w;
  }
}

// -- Reduce / transform / for_each -------------------------------------------

TEST(AlgoReduceTest, SumMatchesAccumulateAcrossWidths) {
  for (const i64 n : test_sizes()) {
    const auto in = random_values<i64>(n, 0xabc + static_cast<u64>(n), -1000,
                                       1000);
    const i64 oracle = std::accumulate(in.begin(), in.end(), i64{17});
    for (const int w : kWidths) {
      EXPECT_EQ(algo::reduce(in.data(), n, i64{17}, std::plus<>{},
                             opts_for(w)),
                oracle)
          << "n=" << n << " w=" << w;
    }
  }
}

TEST(AlgoReduceTest, MaxAppliesInitExactlyOnce) {
  // A non-idempotent check: init must combine exactly once, so sum with a
  // nonzero init over an all-zero array must equal the init.
  const std::vector<i64> zeros(513, 0);
  for (const int w : kWidths) {
    EXPECT_EQ(algo::reduce(zeros.data(), static_cast<i64>(zeros.size()),
                           i64{23}, std::plus<>{}, opts_for(w)),
              23);
  }
}

TEST(AlgoTransformTest, MapsEveryElementAcrossWidths) {
  const auto in = random_values<i64>(4097, 3, -100, 100);
  std::vector<i64> oracle(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) oracle[i] = in[i] * 2 + 1;
  for (const int w : kWidths) {
    std::vector<i64> out(in.size(), 0);
    algo::transform(in.data(), out.data(), static_cast<i64>(in.size()),
                    [](i64 v) { return v * 2 + 1; }, opts_for(w));
    EXPECT_EQ(out, oracle) << "w=" << w;
  }
}

TEST(AlgoForEachTest, TouchesEveryIndexExactlyOnce) {
  for (const int w : kWidths) {
    std::vector<std::atomic<int>> hits(3001);
    for (auto& h : hits) h.store(0);
    algo::for_each(0, 3001, [&](i64 i) { hits[i].fetch_add(1); },
                   opts_for(w));
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " w=" << w;
    }
  }
}

// -- Sorts -------------------------------------------------------------------

template <typename K>
void radix_roundtrip(K lo, K hi) {
  for (const i64 n : test_sizes()) {
    for (auto& shape : input_shapes<K>(n, lo, hi)) {
      std::vector<K> oracle = shape;
      std::sort(oracle.begin(), oracle.end());
      for (const int w : kWidths) {
        std::vector<K> keys = shape;
        algo::radix_sort(keys.data(), n, opts_for(w));
        EXPECT_EQ(keys, oracle) << "n=" << n << " w=" << w;
      }
    }
  }
}

TEST(AlgoRadixSortTest, U64) { radix_roundtrip<u64>(0, ~u64{0} >> 1); }
TEST(AlgoRadixSortTest, U32) { radix_roundtrip<std::uint32_t>(0, ~0u); }
TEST(AlgoRadixSortTest, I64NegativesSortBelowPositives) {
  radix_roundtrip<i64>(-1'000'000, 1'000'000);
}
TEST(AlgoRadixSortTest, I32NegativesSortBelowPositives) {
  radix_roundtrip<std::int32_t>(-100000, 100000);
}
TEST(AlgoRadixSortTest, U16) { radix_roundtrip<std::uint16_t>(0, 65535); }
TEST(AlgoRadixSortTest, U8) { radix_roundtrip<std::uint8_t>(0, 255); }

TEST(AlgoCountingSortTest, MatchesStableSortAcrossWidths) {
  constexpr i64 kBuckets = 100;
  for (const i64 n : test_sizes()) {
    for (auto& shape : input_shapes<u64>(n, 0, kBuckets - 1)) {
      std::vector<u64> oracle = shape;
      std::stable_sort(oracle.begin(), oracle.end());
      for (const int w : kWidths) {
        std::vector<u64> keys = shape;
        algo::counting_sort(keys.data(), n, kBuckets,
                            [](u64 v) { return static_cast<i64>(v); },
                            opts_for(w));
        EXPECT_EQ(keys, oracle) << "n=" << n << " w=" << w;
      }
    }
  }
}

TEST(AlgoCountingSortTest, IsStable) {
  // Tag each element with its original index; after sorting by key alone,
  // equal keys must keep ascending tags — and the whole sequence must be
  // byte-identical to std::stable_sort's.
  struct Tagged {
    u64 key;
    u64 tag;
    bool operator==(const Tagged&) const = default;
  };
  const i64 n = 20000;
  const auto raw = random_values<u64>(n, 77, 0, 15);  // heavy duplication
  std::vector<Tagged> src(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    src[static_cast<std::size_t>(i)] = {raw[static_cast<std::size_t>(i)],
                                        static_cast<u64>(i)};
  }
  std::vector<Tagged> oracle = src;
  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.key < b.key;
                   });
  for (const int w : kWidths) {
    std::vector<Tagged> elems = src;
    algo::counting_sort(elems.data(), n, 16,
                        [](const Tagged& t) { return static_cast<i64>(t.key); },
                        opts_for(w));
    EXPECT_EQ(elems, oracle) << "w=" << w;
  }
}

// -- top_k -------------------------------------------------------------------

TEST(AlgoTopKTest, EdgeKsAndShapesMatchPartialSort) {
  for (const i64 n : test_sizes()) {
    const auto in = random_values<i64>(n, 0xf00 + static_cast<u64>(n), -500,
                                       500);
    std::vector<i64> sorted = in;
    std::sort(sorted.begin(), sorted.end(), std::greater<>{});
    for (const i64 k : {i64{0}, i64{1}, i64{5}, n, 2 * n}) {
      const i64 want = std::min(k, n);
      for (const int w : kWidths) {
        std::vector<i64> out(static_cast<std::size_t>(std::max(k, i64{1})),
                             -9999);
        const i64 got = algo::top_k(in.data(), n, k, out.data(), opts_for(w));
        ASSERT_EQ(got, want) << "n=" << n << " k=" << k << " w=" << w;
        for (i64 i = 0; i < want; ++i) {
          EXPECT_EQ(out[static_cast<std::size_t>(i)],
                    sorted[static_cast<std::size_t>(i)])
              << "n=" << n << " k=" << k << " w=" << w << " i=" << i;
        }
      }
    }
  }
}

TEST(AlgoTopKTest, CustomComparatorSelectsSmallest) {
  const auto in = random_values<i64>(9999, 5, -500, 500);
  std::vector<i64> sorted = in;
  std::sort(sorted.begin(), sorted.end());
  std::vector<i64> out(10);
  const i64 got = algo::top_k(in.data(), static_cast<i64>(in.size()), 10,
                              out.data(), opts_for(4), std::less<i64>{});
  ASSERT_EQ(got, 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], sorted[i]);
}

// -- Histogram ---------------------------------------------------------------

TEST(AlgoHistogramTest, BinCountsMatchSerialAcrossWidths) {
  constexpr i64 kBins = 256;
  for (const i64 n : test_sizes()) {
    const auto in = random_values<u64>(n, 0xbead + static_cast<u64>(n), 0,
                                       ~u64{0} >> 1);
    std::vector<u64> oracle(kBins, 0);
    for (const u64 v : in) ++oracle[v & 0xFF];
    for (const int w : kWidths) {
      std::vector<u64> bins(kBins, 1234);  // must be fully overwritten
      algo::histogram(in.data(), n, bins.data(), kBins,
                      [](u64 v) { return static_cast<i64>(v & 0xFF); },
                      opts_for(w));
      EXPECT_EQ(bins, oracle) << "n=" << n << " w=" << w;
    }
  }
}

// -- Stress: back-to-back phase traffic (TSan hunts reordering here) ---------

TEST(AlgoStressTest, BackToBackScansAndSortsReusePhaseSlotsSafely) {
  // Many parallel algorithm calls in a row on the same hot team: phase_seq
  // must stay monotonic and slot payload reuse must be fenced, or TSan (and
  // eventually the oracles) catch the overlap.
  const i64 n = 8192;
  const auto base = random_values<u64>(n, 0xcafe, 0, ~u64{0} >> 1);
  std::vector<u64> sorted = base;
  std::sort(sorted.begin(), sorted.end());
  std::vector<i64> as_i64(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    as_i64[i] = static_cast<i64>(base[i] & 0xFFFF);
  }
  std::vector<i64> scan_oracle(as_i64.size());
  i64 run = 0;
  for (std::size_t i = 0; i < as_i64.size(); ++i) {
    scan_oracle[i] = run;
    run += as_i64[i];
  }

  for (int iter = 0; iter < 20; ++iter) {
    const int w = kWidths[iter % 4];
    std::vector<i64> out(as_i64.size());
    algo::exclusive_scan(as_i64.data(), out.data(), n, i64{0}, std::plus<>{},
                         opts_for(w));
    ASSERT_EQ(out, scan_oracle) << "iter=" << iter;
    std::vector<u64> keys = base;
    algo::radix_sort(keys.data(), n, opts_for(w));
    ASSERT_EQ(keys, sorted) << "iter=" << iter;
  }
}

// -- Fault injection: shrunken teams -----------------------------------------

class AlgoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    double probs[rt::kNumFaultSites] = {0, 0, 0};
    probs[static_cast<int>(rt::FaultSite::kSpawn)] = 0.5;
    rt::fault_configure(probs);
  }
  void TearDown() override { rt::fault_reset(); }
};

TEST_F(AlgoFaultTest, ScanAndSortStayExactWhenSpawnFaultsShrinkTheTeam) {
  // Every other worker spawn fails: the delivered team is smaller than the
  // request, and every phase structure (PhaseSync width, scratch rows,
  // shard map) must follow the delivered size, not the requested one. The
  // request must exceed the hot pool left by earlier tests (width <= 8) or
  // no spawns happen at all — hence 32.
  constexpr int kWide = 32;
  const i64 n = 50000;
  const auto base = random_values<u64>(n, 0xdead, 0, ~u64{0} >> 1);
  std::vector<u64> sorted = base;
  std::sort(sorted.begin(), sorted.end());
  std::vector<i64> as_i64(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    as_i64[i] = static_cast<i64>(base[i] & 0xFFFF);
  }
  std::vector<i64> scan_oracle(as_i64.size());
  i64 run = 0;
  for (std::size_t i = 0; i < as_i64.size(); ++i) {
    scan_oracle[i] = run;
    run += as_i64[i];
  }

  for (int iter = 0; iter < 8; ++iter) {
    std::vector<i64> out(as_i64.size());
    algo::exclusive_scan(as_i64.data(), out.data(), n, i64{0}, std::plus<>{},
                         opts_for(kWide));
    ASSERT_EQ(out, scan_oracle) << "iter=" << iter;

    std::vector<u64> keys = base;
    algo::radix_sort(keys.data(), n, opts_for(kWide));
    ASSERT_EQ(keys, sorted) << "iter=" << iter;

    std::vector<u64> counted(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) counted[i] = base[i] % 64;
    std::vector<u64> counted_oracle = counted;
    std::stable_sort(counted_oracle.begin(), counted_oracle.end());
    algo::counting_sort(counted.data(), n, 64,
                        [](u64 v) { return static_cast<i64>(v); },
                        opts_for(kWide));
    ASSERT_EQ(counted, counted_oracle) << "iter=" << iter;
  }
  EXPECT_GT(rt::fault_injected_count(rt::FaultSite::kSpawn), 0);
}

}  // namespace
}  // namespace zomp
