// Lexer tests: token kinds, literals, trivia handling, and the directive
// interception that makes the whole approach work (paper §2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lang/lexer.h"

namespace zomp::lang {
namespace {

std::vector<Token> lex(const std::string& text, Diagnostics* diags_out = nullptr) {
  SourceFile file("test.mz", text);
  Diagnostics diags;
  Lexer lexer(file, diags);
  auto tokens = lexer.lex();
  if (diags_out != nullptr) *diags_out = std::move(diags);
  return tokens;
}

std::vector<TokenKind> kinds(const std::string& text) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(text)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, Keywords) {
  const auto k = kinds("fn var const if else while for return break continue "
                       "true false and or extern pub undefined");
  const std::vector<TokenKind> want = {
      TokenKind::kKwFn,    TokenKind::kKwVar,      TokenKind::kKwConst,
      TokenKind::kKwIf,    TokenKind::kKwElse,     TokenKind::kKwWhile,
      TokenKind::kKwFor,   TokenKind::kKwReturn,   TokenKind::kKwBreak,
      TokenKind::kKwContinue, TokenKind::kKwTrue,  TokenKind::kKwFalse,
      TokenKind::kKwAnd,   TokenKind::kKwOr,       TokenKind::kKwExtern,
      TokenKind::kKwPub,   TokenKind::kKwUndefined, TokenKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(LexerTest, IdentifiersKeepText) {
  const auto tokens = lex("foo _bar baz42");
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "_bar");
  EXPECT_EQ(tokens[2].text, "baz42");
}

TEST(LexerTest, IntegerLiterals) {
  const auto tokens = lex("0 42 1_000_000 0x1F");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 1000000);
  EXPECT_EQ(tokens[3].int_value, 31);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tokens[i].kind, TokenKind::kIntLiteral);
}

TEST(LexerTest, FloatLiterals) {
  const auto tokens = lex("1.5 0.25 2e10 3.5e-2");
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 2e10);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 3.5e-2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kFloatLiteral);
  }
}

TEST(LexerTest, RangeDoesNotLexAsFloat) {
  // "0..n" must be int, dotdot, ident — the Zig range spelling.
  const auto k = kinds("0..n");
  const std::vector<TokenKind> want = {TokenKind::kIntLiteral,
                                       TokenKind::kDotDot,
                                       TokenKind::kIdentifier, TokenKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(LexerTest, DotStarAndLen) {
  const auto k = kinds("p.* x.len");
  const std::vector<TokenKind> want = {
      TokenKind::kIdentifier, TokenKind::kDotStar, TokenKind::kIdentifier,
      TokenKind::kDot,        TokenKind::kIdentifier, TokenKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(LexerTest, Operators) {
  const auto k = kinds("+ += - -= * *= / /= == = != ! < <= << > >= >> & | ^ %");
  const std::vector<TokenKind> want = {
      TokenKind::kPlus,  TokenKind::kPlusAssign,  TokenKind::kMinus,
      TokenKind::kMinusAssign, TokenKind::kStar,  TokenKind::kStarAssign,
      TokenKind::kSlash, TokenKind::kSlashAssign, TokenKind::kEq,
      TokenKind::kAssign, TokenKind::kNe,         TokenKind::kBang,
      TokenKind::kLt,    TokenKind::kLe,          TokenKind::kShl,
      TokenKind::kGt,    TokenKind::kGe,          TokenKind::kShr,
      TokenKind::kAmp,   TokenKind::kPipe,        TokenKind::kCaret,
      TokenKind::kPercent, TokenKind::kEof};
  EXPECT_EQ(k, want);
}

TEST(LexerTest, OrdinaryCommentsAreTrivia) {
  const auto tokens = lex("a // comment\nb /// doc comment\nc");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, DirectiveCommentsBecomeTokens) {
  const auto tokens = lex("//#omp parallel for schedule(static)\nx");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(tokens[0].text, " parallel for schedule(static)");
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, DirectivePrefixMustBeExact) {
  // "// #omp" (space before #) is an ordinary comment, not a directive —
  // same as the paper's comment-sentinel approach.
  const auto tokens = lex("// #omp parallel\nx");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, BuiltinTokens) {
  const auto tokens = lex("@sqrt(x)");
  EXPECT_EQ(tokens[0].kind, TokenKind::kBuiltin);
  EXPECT_EQ(tokens[0].text, "sqrt");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  const auto tokens = lex(R"("hello\n" "a\tb" "q\"q")");
  EXPECT_EQ(tokens[0].text, "hello\n");
  EXPECT_EQ(tokens[1].text, "a\tb");
  EXPECT_EQ(tokens[2].text, "q\"q");
}

TEST(LexerTest, UnterminatedStringIsError) {
  Diagnostics diags;
  lex("\"abc", &diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LexerTest, UnknownCharacterIsErrorButLexingContinues) {
  Diagnostics diags;
  const auto tokens = lex("a $ b", &diags);
  EXPECT_TRUE(diags.has_errors());
  ASSERT_EQ(tokens.size(), 3u);  // a, b, eof
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.col, 1u);
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[1].loc.col, 3u);
}

TEST(DiagnosticsTest, RenderIncludesCaret) {
  SourceFile file("t.mz", "var x = $;\n");
  Diagnostics diags;
  diags.error(SourceLoc{8, 1, 9}, "bad character");
  const std::string text = diags.render(file);
  EXPECT_NE(text.find("t.mz:1:9: error: bad character"), std::string::npos);
  EXPECT_NE(text.find('^'), std::string::npos);
}

}  // namespace
}  // namespace zomp::lang
