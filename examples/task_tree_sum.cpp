// Task-parallel divide and conquer — the tasking extension in action
// (the paper lists tasking as future work for the Zig port; the zomp runtime
// implements it, so the example demonstrates the full task lifecycle:
// recursive spawn, taskwait joins, and a serial cutoff).
//   ./build/examples/task_tree_sum [n [cutoff]]
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "runtime/runtime.h"

namespace {

/// Sums [lo, hi) by recursive task splitting; below `cutoff` it sums
/// serially (standard task granularity control).
double tree_sum(const std::vector<double>& data, std::int64_t lo,
                std::int64_t hi, std::int64_t cutoff) {
  if (hi - lo <= cutoff) {
    double s = 0.0;
    for (std::int64_t i = lo; i < hi; ++i) {
      s += data[static_cast<std::size_t>(i)];
    }
    return s;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  double left = 0.0;
  double right = 0.0;
  zomp::task([&] { left = tree_sum(data, lo, mid, cutoff); });
  zomp::task([&] { right = tree_sum(data, mid, hi, cutoff); });
  zomp::taskwait();  // children complete before we combine
  return left + right;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::strtol(argv[1], nullptr, 10) : (1 << 22);
  const std::int64_t cutoff = argc > 2 ? std::strtol(argv[2], nullptr, 10) : (1 << 14);

  std::vector<double> data(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(i % 1000) * 0.001;
  }
  const double expect = std::accumulate(data.begin(), data.end(), 0.0);

  double result = 0.0;
  const double t0 = zomp::wtime();
  zomp::parallel([&] {
    // One member plants the root task; the whole team executes the tree.
    zomp::single([&] { result = tree_sum(data, 0, n, cutoff); });
  });
  const double seconds = zomp::wtime() - t0;

  std::printf("tree_sum(%lld elements, cutoff %lld) = %.6f in %.3f s on %d "
              "threads\n",
              static_cast<long long>(n), static_cast<long long>(cutoff),
              result, seconds, zomp::max_threads());
  if (result < expect - 1e-6 || result > expect + 1e-6) {
    std::fprintf(stderr, "MISMATCH: expected %.6f\n", expect);
    return 1;
  }
  std::printf("matches serial accumulate\n");
  return 0;
}
