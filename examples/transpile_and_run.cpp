// The compiler pipeline as a library: embed MiniZig-with-OpenMP source,
// transform it, show the generated C++, and execute it in-process with the
// parallel interpreter — the whole paper in one executable.
//   ./build/examples/transpile_and_run [--show-cpp]
#include <cstdio>
#include <cstring>
#include <sstream>

#include "codegen/codegen.h"
#include "core/pipeline.h"
#include "interp/interp.h"

namespace {

// Dot product and normalisation with directives-as-comments — the mechanism
// the paper adds to Zig.
const char* kSource = R"(
extern fn mz_omp_get_num_threads() i64;

fn dot(x: []f64, y: []f64) f64 {
  var sum: f64 = 0.0;
  const n: i64 = x.len;
  //#omp parallel for reduction(+: sum) schedule(static)
  for (0..n) |i| {
    sum += x[i] * y[i];
  }
  return sum;
}

pub fn main() void {
  const n: i64 = 100000;
  var x = @alloc(f64, n);
  var y = @alloc(f64, n);
  //#omp parallel for
  for (0..n) |i| {
    x[i] = 1.0;
    y[i] = @floatFromInt(i);
  }
  const s = dot(x, y);
  @print("dot(1, iota) =", s);
  var threads: i64 = 0;
  //#omp parallel
  {
    //#omp master
    {
      threads = mz_omp_get_num_threads();
    }
  }
  @print("ran on", threads, "threads");
  @free(x);
  @free(y);
}
)";

}  // namespace

int main(int argc, char** argv) {
  const bool show_cpp = argc > 1 && std::strcmp(argv[1], "--show-cpp") == 0;

  auto result = zomp::core::compile_source(kSource, {true, "demo"});
  if (!result.ok) {
    std::fprintf(stderr, "%s", result.diagnostics_text().c_str());
    return 1;
  }
  std::printf("directive engine: %d directives, %d regions outlined, %d "
              "worksharing loops\n",
              result.stats.directives_seen, result.stats.regions_outlined,
              result.stats.ws_loops);

  if (show_cpp) {
    std::printf("---- generated C++ (what mzc writes at build time) ----\n%s"
                "---------------------------------------------------------\n",
                zomp::codegen::emit_cpp(*result.module).c_str());
  }

  // Run the transformed program on real runtime threads via the interpreter.
  std::printf("---- interpreted execution ----\n");
  zomp::interp::Interp interp(*result.module);
  if (!interp.run_main()) {
    std::fprintf(stderr, "no main function\n");
    return 1;
  }
  std::printf("-------------------------------\n");
  std::printf("(expected: dot = %g)\n", 100000.0 * 99999.0 / 2.0);
  return 0;
}
