// Fortran interoperability walkthrough (paper §3.1: Zig cannot call Fortran
// directly; procedures are declared as C-linkage functions with pointer
// arguments and an appended underscore for the Fortran compiler's mangling).
//
// Shows: (1) the binding generator producing the MiniZig extern declaration
// and the C++ prototype for a Fortran procedure; (2) an actual call through
// the mangled by-reference ABI; (3) column-major array semantics across the
// boundary.
//   ./build/examples/fortran_interop
#include <cstdio>
#include <vector>

#include "fortran/fview.h"
#include "fortran/mangle.h"
#include "npb/cg.h"
#include "npb/fortran_iface.h"

namespace {

// A "Fortran" matrix routine: fills A(i,j) = i + 100*j, dimension(ld, *),
// column-major, 1-based — compiled as C++ but indistinguishable at the call
// boundary from gfortran output.
extern "C" void fill_matrix_(const std::int64_t* ld, const std::int64_t* rows,
                             const std::int64_t* cols, double* a) {
  zomp::fortran::ColMajorView<double> view(a, *ld);
  for (std::int64_t j = 1; j <= *cols; ++j) {
    for (std::int64_t i = 1; i <= *rows; ++i) {
      view(i, j) = static_cast<double>(i) + 100.0 * static_cast<double>(j);
    }
  }
}

}  // namespace

int main() {
  using namespace zomp::fortran;

  // 1. Binding generation: what a user of the paper's compiler writes by
  //    hand, produced mechanically from the procedure signature.
  FProc fill{"FILL_MATRIX",
             {FArg::kInteger, FArg::kInteger, FArg::kInteger, FArg::kRealArray},
             /*returns_real=*/false};
  std::printf("Fortran procedure:  subroutine FILL_MATRIX(ld, rows, cols, a)\n");
  std::printf("mangled symbol:     %s\n", mangle(fill.name).c_str());
  std::printf("MiniZig binding:    %s\n", minizig_binding(fill).c_str());
  std::printf("C++ prototype:      %s\n\n", cpp_prototype(fill).c_str());

  // 2. Call through the by-reference ABI.
  const std::int64_t ld = 4, rows = 3, cols = 2;
  std::vector<double> a(static_cast<std::size_t>(ld * cols), 0.0);
  fill_matrix_(&ld, &rows, &cols, a.data());

  // 3. Column-major layout check: element (2,1) sits at flat index 1,
  //    element (1,2) at flat index ld.
  std::printf("A(2,1) = %g (flat[1] = %g), A(1,2) = %g (flat[%lld] = %g)\n",
              ColMajorView<double>(a.data(), ld)(2, 1), a[1],
              ColMajorView<double>(a.data(), ld)(1, 2),
              static_cast<long long>(ld), a[static_cast<std::size_t>(ld)]);

  // 4. The real thing: the CG reference kernel through the same boundary
  //    (this is how the Table 1 harness invokes its "Fortran" references).
  const zomp::npb::CgClass cls = zomp::npb::cg_class('S');
  zomp::npb::SparseMatrix m = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  const std::int64_t n = m.n, niter = cls.niter, threads = 2;
  double zeta = 0.0, rnorm = 0.0;
  cg_solve_(&n, m.rowstr.data(), m.colidx.data(), m.values.data(), &niter,
            &cls.shift, &threads, &zeta, &rnorm);
  std::printf("\ncg_solve_ through the Fortran ABI: zeta = %.12f "
              "(verify %.12f) -> %s\n",
              zeta, cls.verify_zeta,
              zomp::npb::cg_verify({zeta, rnorm, cls.niter}, cls) ? "ok"
                                                                  : "FAIL");
  return 0;
}
