// 2D heat diffusion — a CFD-adjacent stencil solver (the paper motivates
// OpenMP support with CFD workloads; NPB kernels are "representative of CFD
// applications").
//
// Jacobi iteration of the 5-point Laplacian on a square plate with a hot
// edge, one parallel region for the whole solve: worksharing loops over
// rows, a reduction for the convergence check, and a single for the swap —
// the canonical OpenMP stencil structure.
//   ./build/examples/heat_diffusion [n [max_iters [tolerance]]]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "runtime/runtime.h"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 128;
  const int max_iters = argc > 2 ? static_cast<int>(std::strtol(argv[2], nullptr, 10)) : 8000;
  const double tol = argc > 3 ? std::strtod(argv[3], nullptr) : 1e-3;

  const auto idx = [n](std::int64_t r, std::int64_t c) {
    return static_cast<std::size_t>(r * n + c);
  };

  std::vector<double> grid(static_cast<std::size_t>(n * n), 0.0);
  std::vector<double> next(static_cast<std::size_t>(n * n), 0.0);
  // Hot top edge, cold elsewhere.
  for (std::int64_t c = 0; c < n; ++c) {
    grid[idx(0, c)] = 100.0;
    next[idx(0, c)] = 100.0;
  }

  double* cur = grid.data();
  double* nxt = next.data();
  double max_delta = 0.0;
  int iters = 0;
  bool converged = false;

  const double t0 = zomp::wtime();
  zomp::parallel([&] {
    for (int it = 0; it < max_iters && !converged; ++it) {
      const double delta = zomp::reduce_each<double>(
          1, n - 1, 0.0,
          [](double a, double b) { return a > b ? a : b; },
          [&](std::int64_t r) {
            double row_max = 0.0;
            for (std::int64_t c = 1; c < n - 1; ++c) {
              const double v = 0.25 * (cur[idx(r - 1, c)] + cur[idx(r + 1, c)] +
                                       cur[idx(r, c - 1)] + cur[idx(r, c + 1)]);
              nxt[idx(r, c)] = v;
              row_max = std::max(row_max, std::fabs(v - cur[idx(r, c)]));
            }
            return row_max;
          });
      // One member swaps the buffers and updates the shared loop controls;
      // the implicit barrier of single orders it for everyone.
      zomp::single([&] {
        std::swap(cur, nxt);
        max_delta = delta;
        iters = it + 1;
        converged = delta < tol;
      });
    }
  });
  const double seconds = zomp::wtime() - t0;

  std::printf("%lldx%lld plate: %s after %d iterations (max delta %.2e), "
              "%.3f s on %d threads\n",
              static_cast<long long>(n), static_cast<long long>(n),
              converged ? "converged" : "stopped", iters, max_delta, seconds,
              zomp::max_threads());

  // Sanity: centre of the plate must be strictly between the edge
  // temperatures, and symmetric points should roughly agree.
  const double centre = cur[idx(n / 2, n / 2)];
  const double left = cur[idx(n / 2, n / 4)];
  const double right = cur[idx(n / 2, 3 * n / 4)];
  std::printf("centre %.3f, quarter points %.3f / %.3f\n", centre, left, right);
  if (!(centre > 0.0 && centre < 100.0) || std::fabs(left - right) > 1.0) {
    std::fprintf(stderr, "solution looks wrong\n");
    return 1;
  }
  return 0;
}
