// Mandelbrot renderer — the paper's fourth benchmark as a real application.
//
// Renders the escape-time fractal in parallel (dynamic schedule: rows near
// the set cost orders of magnitude more than far rows) and writes a PGM
// image. Usage:
//   ./build/examples/mandelbrot_image [width height max_iter [out.pgm]]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "npb/mandel.h"
#include "runtime/api.h"

int main(int argc, char** argv) {
  zomp::npb::MandelParams params;
  params.width = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 800;
  params.height = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 800;
  params.max_iter = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 500;
  const char* path = argc > 4 ? argv[4] : "mandelbrot.pgm";

  std::printf("rendering %lldx%lld, max_iter=%lld, %d threads...\n",
              static_cast<long long>(params.width),
              static_cast<long long>(params.height),
              static_cast<long long>(params.max_iter), zomp::max_threads());

  std::vector<std::int64_t> iters;
  const double t0 = zomp::wtime();
  zomp::npb::mandel_render(params, iters);
  const double seconds = zomp::wtime() - t0;

  std::int64_t inside = 0;
  for (const std::int64_t it : iters) {
    if (it == params.max_iter) ++inside;
  }
  std::printf("%.3f s; %lld pixels inside the set\n", seconds,
              static_cast<long long>(inside));

  if (!zomp::npb::mandel_write_pgm(params, iters, path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::printf("wrote %s\n", path);
  return 0;
}
