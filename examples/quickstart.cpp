// Quickstart: the zomp C++ API in five minutes.
//
// This is the library's `#pragma omp` equivalent for C++ callers — the same
// runtime the transpiled MiniZig kernels use, behind a typed API. Build and
// run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "runtime/runtime.h"

int main() {
  // -- parallel: run a closure on every member of a team ---------------------
  //    (#pragma omp parallel)
  zomp::parallel([] {
    std::printf("hello from thread %d of %d\n", zomp::thread_num(),
                zomp::num_threads());
  });

  // -- parallel_for: distribute a loop --------------------------------------
  //    (#pragma omp parallel for)
  const std::int64_t n = 1 << 20;
  std::vector<double> x(n, 1.0), y(n, 2.0);
  const double a = 0.5;
  zomp::parallel_for(0, n, [&](std::int64_t i) { y[i] += a * x[i]; });
  std::printf("daxpy: y[0] = %g (expect 2.5)\n", y[0]);

  // -- parallel_reduce: thread-safe reductions --------------------------------
  //    (#pragma omp parallel for reduction(+:sum))
  const double sum = zomp::parallel_reduce<double>(
      0, n, 0.0, std::plus<>{}, [&](std::int64_t i) { return y[i]; });
  std::printf("sum = %g (expect %g)\n", sum, 2.5 * static_cast<double>(n));

  // -- schedules: pick how iterations map to threads ---------------------------
  //    (schedule(dynamic, 64))
  zomp::parallel_for(
      0, n, [&](std::int64_t i) { y[i] *= 2.0; },
      zomp::ForOptions{{zomp::rt::ScheduleKind::kDynamic, 64}});

  // -- inside a region: worksharing, single, critical, barrier -----------------
  double acc = 0.0;
  zomp::parallel([&] {
    // every member runs this closure; for_each splits the loop between them
    double local = 0.0;
    zomp::for_each(
        0, n, [&](std::int64_t i) { local += y[i]; },
        zomp::ForOptions{{}, /*nowait=*/true});
    zomp::critical([&] { acc += local; });
    zomp::barrier();
    zomp::single([&] {
      // y went 2.0 -> 2.5 (daxpy) -> 5.0 (doubling), so the sum is 5n.
      std::printf("in-region sum = %g (expect %g)\n", acc,
                  5.0 * static_cast<double>(n));
    });
  });

  // -- tasks --------------------------------------------------------------------
  //    (#pragma omp task / taskwait)
  std::atomic<int> done{0};
  zomp::parallel([&] {
    zomp::single([&] {
      for (int i = 0; i < 100; ++i) {
        zomp::task([&] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      zomp::taskwait();
      std::printf("tasks done: %d (expect 100)\n", done.load());
    });
  });

  return 0;
}
